package core

import (
	"math"
	"math/rand"
	"testing"
)

func TestOverlapNeverWorseThanPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 40; trial++ {
		p := 1 + rng.Intn(6)
		lps := make([]LinearProcessor, p)
		for i := range lps {
			lps[i] = LinearProcessor{
				Alpha: rng.Float64() * 2,
				Beta:  0.1 + rng.Float64()*3,
			}
		}
		lps[p-1].Alpha = 0
		n := 1 + rng.Intn(1000)
		plain, err := SolveLinearRational(lps, n)
		if err != nil {
			t.Fatal(err)
		}
		over, err := SolveLinearRootOverlap(lps, n)
		if err != nil {
			t.Fatal(err)
		}
		if over.Makespan > plain.Makespan+1e-9*plain.Makespan {
			t.Errorf("trial %d: overlap %g worse than plain %g", trial, over.Makespan, plain.Makespan)
		}
	}
}

func TestOverlapSimultaneousEndings(t *testing.T) {
	lps := []LinearProcessor{
		{Name: "w1", Alpha: 0.5, Beta: 2},
		{Name: "w2", Alpha: 1, Beta: 3},
		{Name: "root", Alpha: 0, Beta: 1},
	}
	n := 1200
	sol, err := SolveLinearRootOverlap(lps, n)
	if err != nil {
		t.Fatal(err)
	}
	// Workers obey Eq. (1); the root finishes at beta*share with no
	// communication prefix.
	commSoFar := 0.0
	for i := 0; i < 2; i++ {
		commSoFar += lps[i].Alpha * sol.Shares[i]
		finish := commSoFar + lps[i].Beta*sol.Shares[i]
		if math.Abs(finish-sol.Makespan) > 1e-9*sol.Makespan {
			t.Errorf("worker %d finishes at %g, want %g", i, finish, sol.Makespan)
		}
	}
	rootFinish := lps[2].Beta * sol.Shares[2]
	if math.Abs(rootFinish-sol.Makespan) > 1e-9*sol.Makespan {
		t.Errorf("root finishes at %g, want %g", rootFinish, sol.Makespan)
	}
	// Shares sum to n.
	sum := 0.0
	for _, s := range sol.Shares {
		sum += s
	}
	if math.Abs(sum-float64(n)) > 1e-6 {
		t.Errorf("shares sum to %g, want %d", sum, n)
	}
}

func TestOverlapGainIsTheRootCommWindow(t *testing.T) {
	// With a single worker and the root, the no-overlap root waits
	// alpha_1*n_1 before computing; overlapping removes exactly that
	// serialization from the root's critical path, so the gain is
	// strictly positive whenever the worker gets a share.
	lps := []LinearProcessor{
		{Name: "w", Alpha: 1, Beta: 1},
		{Name: "root", Alpha: 0, Beta: 1},
	}
	gain, err := OverlapGain(lps, 100)
	if err != nil {
		t.Fatal(err)
	}
	if gain <= 0 || gain >= 1 {
		t.Errorf("overlap gain = %g, want in (0, 1)", gain)
	}
}

func TestOverlapGainZeroWhenCommFree(t *testing.T) {
	// Free links: the scatter costs nothing, so overlapping the root
	// cannot help.
	lps := []LinearProcessor{
		{Name: "w", Alpha: 0, Beta: 1},
		{Name: "root", Alpha: 0, Beta: 1},
	}
	gain, err := OverlapGain(lps, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gain) > 1e-12 {
		t.Errorf("overlap gain = %g with free links, want 0", gain)
	}
}

func TestOverlapInstantRoot(t *testing.T) {
	lps := []LinearProcessor{
		{Name: "w", Alpha: 1, Beta: 1},
		{Name: "root", Alpha: 0, Beta: 0},
	}
	sol, err := SolveLinearRootOverlap(lps, 50)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Shares[1] != 50 || sol.Makespan != 0 {
		t.Errorf("instant root solution = %+v", sol)
	}
}

func TestOverlapPrunesSlowLinks(t *testing.T) {
	lps := []LinearProcessor{
		{Name: "useless", Alpha: 1000, Beta: 0.001},
		{Name: "root", Alpha: 0, Beta: 1},
	}
	sol, err := SolveLinearRootOverlap(lps, 100)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Kept[0] {
		t.Error("slow-linked worker not pruned in the overlap model")
	}
	if sol.Shares[1] != 100 {
		t.Errorf("root share = %g, want 100", sol.Shares[1])
	}
}

func TestOverlapValidation(t *testing.T) {
	if _, err := SolveLinearRootOverlap(nil, 5); err == nil {
		t.Error("empty processors accepted")
	}
	if _, err := SolveLinearRootOverlap([]LinearProcessor{{Beta: 1}}, -1); err == nil {
		t.Error("negative n accepted")
	}
	//scatterlint:ignore costinvariant invalid on purpose: exercises the solver's rejection of negative alpha
	if _, err := SolveLinearRootOverlap([]LinearProcessor{{Alpha: -1, Beta: 1}}, 5); err == nil {
		t.Error("negative alpha accepted")
	}
}

func TestOverlapGainTable1Scale(t *testing.T) {
	// On the Table 1 platform, communication is tiny compared to
	// computation (alpha ~1e-5 vs beta ~1e-2), so the overlap can
	// gain only a sliver — quantifying why the paper could afford to
	// keep the original program's structure.
	lps := []LinearProcessor{
		{Name: "caseb", Alpha: 1.00e-5, Beta: 0.004629},
		{Name: "pellinore", Alpha: 1.12e-5, Beta: 0.009365},
		{Name: "merlin", Alpha: 8.15e-5, Beta: 0.003976},
		{Name: "dinadan", Alpha: 0, Beta: 0.009288},
	}
	gain, err := OverlapGain(lps, 817101)
	if err != nil {
		t.Fatal(err)
	}
	if gain < 0 || gain > 0.02 {
		t.Errorf("overlap gain = %g, expected under 2%% on a compute-bound grid", gain)
	}
}

package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cost"
)

// figure1Procs builds the 4-processor configuration sketched in the
// paper's Figure 1: three workers plus the root P4 (which pays no
// communication cost), with hand-checkable integer costs.
func figure1Procs() []Processor {
	return []Processor{
		{Name: "P1", Comm: cost.Linear{PerItem: 1}, Comp: cost.Linear{PerItem: 2}},
		{Name: "P2", Comm: cost.Linear{PerItem: 2}, Comp: cost.Linear{PerItem: 1}},
		{Name: "P3", Comm: cost.Linear{PerItem: 3}, Comp: cost.Linear{PerItem: 3}},
		{Name: "P4-root", Comm: cost.Zero, Comp: cost.Linear{PerItem: 2}},
	}
}

func TestFinishTimesHandComputed(t *testing.T) {
	procs := figure1Procs()
	dist := Distribution{2, 2, 2, 2}
	// P1: comm 2, comp 4 -> 6
	// P2: starts after P1's comm (2), comm 4, comp 2 -> 8
	// P3: starts at 6, comm 6, comp 6 -> 18
	// P4: root, no comm, computes after all sends (12) -> 16
	want := []float64{6, 8, 18, 16}
	got := FinishTimes(procs, dist)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("finish[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	if m := Makespan(procs, dist); m != 18 {
		t.Errorf("makespan = %g, want 18", m)
	}
}

func TestFinishTimesStairEffect(t *testing.T) {
	// With equal shares, each later processor starts receiving only
	// after the previous ones were served: receive-completion times
	// must be non-decreasing (the "stair effect" of Figure 1).
	procs := figure1Procs()
	dist := Uniform(4, 40)
	commEnd := 0.0
	for i, ni := range dist {
		commEnd += procs[i].Comm.Eval(ni)
		startComp := commEnd
		finish := FinishTimes(procs, dist)[i]
		if math.Abs(finish-(startComp+procs[i].Comp.Eval(ni))) > 1e-9 {
			t.Errorf("processor %d: finish %g inconsistent with serialized start %g", i, finish, startComp)
		}
	}
}

func TestUniform(t *testing.T) {
	cases := []struct {
		p, n int
		want Distribution
	}{
		{4, 8, Distribution{2, 2, 2, 2}},
		{4, 10, Distribution{3, 3, 2, 2}},
		{3, 2, Distribution{1, 1, 0}},
		{1, 5, Distribution{5}},
		{5, 0, Distribution{0, 0, 0, 0, 0}},
	}
	for _, c := range cases {
		got := Uniform(c.p, c.n)
		if len(got) != len(c.want) {
			t.Fatalf("Uniform(%d,%d) = %v, want %v", c.p, c.n, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Uniform(%d,%d) = %v, want %v", c.p, c.n, got, c.want)
				break
			}
		}
		if got.Sum() != c.n {
			t.Errorf("Uniform(%d,%d) sums to %d", c.p, c.n, got.Sum())
		}
	}
	if Uniform(0, 5) != nil {
		t.Error("Uniform(0, n) should be nil")
	}
}

func TestDistributionValidate(t *testing.T) {
	d := Distribution{1, 2, 3}
	if err := d.Validate(3, 6); err != nil {
		t.Errorf("valid distribution rejected: %v", err)
	}
	if err := d.Validate(2, 6); err == nil {
		t.Error("wrong processor count accepted")
	}
	if err := d.Validate(3, 7); err == nil {
		t.Error("wrong sum accepted")
	}
	if err := (Distribution{-1, 7}).Validate(2, 6); err == nil {
		t.Error("negative share accepted")
	}
}

func TestValidateProcessors(t *testing.T) {
	if err := ValidateProcessors(nil); err == nil {
		t.Error("empty processor list accepted")
	}
	if err := ValidateProcessors([]Processor{{Name: "x", Comm: cost.Zero}}); err == nil {
		t.Error("processor without computation cost accepted")
	}
	if err := ValidateProcessors(figure1Procs()); err != nil {
		t.Errorf("valid processors rejected: %v", err)
	}
}

func TestMarginalCommCost(t *testing.T) {
	p := Processor{Comm: cost.Linear{PerItem: 0.5}, Comp: cost.Zero}
	if got := MarginalCommCost(p); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("MarginalCommCost(linear 0.5) = %g", got)
	}
	// Affine latency washes out at the probe size.
	pa := Processor{Comm: cost.Affine{Fixed: 100, PerItem: 0.5}, Comp: cost.Zero}
	if got := MarginalCommCost(pa); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("MarginalCommCost(affine) = %g, want 0.5", got)
	}
}

func TestOrderDecreasingBandwidth(t *testing.T) {
	procs := figure1Procs() // alphas 1, 2, 3, root
	order := OrderDecreasingBandwidth(procs, 3)
	want := []int{0, 1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	// Root in the middle must still land last.
	order = OrderDecreasingBandwidth(procs, 1)
	if order[len(order)-1] != 1 {
		t.Errorf("root not last: %v", order)
	}
	// Remaining processors sorted by alpha: 0 (1), 2 (3), 3 (0! the
	// old root has a zero-cost link so it sorts first).
	if order[0] != 3 || order[1] != 0 || order[2] != 2 {
		t.Errorf("order = %v, want [3 0 2 1]", order)
	}
}

func TestOrderIncreasingBandwidth(t *testing.T) {
	procs := figure1Procs()
	order := OrderIncreasingBandwidth(procs, 3)
	want := []int{2, 1, 0, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestOrderIsStableForEqualBandwidth(t *testing.T) {
	procs := []Processor{
		{Name: "a", Comm: cost.Linear{PerItem: 1}, Comp: cost.Zero},
		{Name: "b", Comm: cost.Linear{PerItem: 1}, Comp: cost.Zero},
		{Name: "c", Comm: cost.Linear{PerItem: 1}, Comp: cost.Zero},
		{Name: "root", Comm: cost.Zero, Comp: cost.Zero},
	}
	order := OrderDecreasingBandwidth(procs, 3)
	want := []int{0, 1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("equal-bandwidth order not stable: %v", order)
		}
	}
}

func TestPermuteAndInverse(t *testing.T) {
	procs := figure1Procs()
	order := []int{2, 0, 1, 3}
	perm := Permute(procs, order)
	if perm[0].Name != "P3" || perm[1].Name != "P1" {
		t.Fatalf("Permute wrong: %v, %v", perm[0].Name, perm[1].Name)
	}
	dist := Distribution{10, 20, 30, 40}
	back := InversePermute(dist, order)
	// Position 0 of the permuted list is original index 2.
	if back[2] != 10 || back[0] != 20 || back[1] != 30 || back[3] != 40 {
		t.Errorf("InversePermute = %v", back)
	}
}

func TestInversePermuteRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		p := 1 + rng.Intn(8)
		order := rng.Perm(p)
		dist := make(Distribution, p)
		for i := range dist {
			dist[i] = rng.Intn(100)
		}
		procs := make([]Processor, p)
		for i := range procs {
			procs[i] = Processor{
				Comm: cost.Linear{PerItem: float64(1 + rng.Intn(5))},
				Comp: cost.Linear{PerItem: float64(1 + rng.Intn(5))},
			}
		}
		// A distribution computed on the permuted processors must give
		// the same finish times when mapped back and recomputed on a
		// re-permuted list.
		perm := Permute(procs, order)
		m1 := Makespan(perm, dist)
		back := InversePermute(dist, order)
		m2 := Makespan(perm, dist)
		_ = back
		if m1 != m2 {
			t.Fatalf("permutation broke makespan: %g vs %g", m1, m2)
		}
		if back.Sum() != dist.Sum() {
			t.Fatalf("InversePermute lost items")
		}
	}
}

func TestChooseRoot(t *testing.T) {
	mk := func(rootAlpha float64, transfer float64, name string) RootChoice {
		return RootChoice{
			Name:     name,
			Transfer: transfer,
			Procs: []Processor{
				{Name: "w", Comm: cost.Linear{PerItem: rootAlpha}, Comp: cost.Linear{PerItem: 1}},
				{Name: name, Comm: cost.Zero, Comp: cost.Linear{PerItem: 1}},
			},
		}
	}
	candidates := []RootChoice{
		mk(1, 0, "local"),    // data already here, slower link
		mk(0.1, 1000, "far"), // better link but huge transfer cost
	}
	best, evals, err := ChooseRoot(100, candidates, Algorithm1)
	if err != nil {
		t.Fatal(err)
	}
	if best != 0 {
		t.Errorf("best root = %d (%s), want 0 (local)", best, evals[best].Choice.Name)
	}
	if len(evals) != 2 {
		t.Fatalf("got %d evaluations", len(evals))
	}
	if evals[1].Total < evals[0].Total {
		t.Error("evaluation totals inconsistent with choice")
	}
	// With a free transfer, the better link must win.
	candidates[1].Transfer = 0
	best, _, err = ChooseRoot(100, candidates, Algorithm1)
	if err != nil {
		t.Fatal(err)
	}
	if best != 1 {
		t.Errorf("best root = %d, want 1 (free transfer, faster link)", best)
	}
}

func TestChooseRootErrors(t *testing.T) {
	if _, _, err := ChooseRoot(10, nil, Algorithm1); err == nil {
		t.Error("no candidates accepted")
	}
	bad := []RootChoice{{Name: "bad", Procs: nil}}
	if _, _, err := ChooseRoot(10, bad, Algorithm1); err == nil {
		t.Error("candidate with no processors accepted")
	}
}

func TestBruteForceTiny(t *testing.T) {
	procs := []Processor{
		{Name: "fast", Comm: cost.Linear{PerItem: 1}, Comp: cost.Linear{PerItem: 1}},
		{Name: "root", Comm: cost.Zero, Comp: cost.Linear{PerItem: 1}},
	}
	res, err := BruteForce(procs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Distribution.Validate(2, 4); err != nil {
		t.Fatal(err)
	}
	// Optimal by hand: give the root more because its items are free
	// to ship. e items to worker: finish worker = e + e = 2e; root =
	// e + (4-e) = 4. So any e <= 2 gives makespan 4. The DP prefers
	// the smallest share achieving the optimum: e = 0.
	if res.Makespan != 4 {
		t.Errorf("brute force makespan = %g, want 4", res.Makespan)
	}
}

func TestBruteForceErrors(t *testing.T) {
	if _, err := BruteForce(nil, 3); err == nil {
		t.Error("no processors accepted")
	}
	procs := figure1Procs()
	if _, err := BruteForce(procs, -1); err == nil {
		t.Error("negative n accepted")
	}
}

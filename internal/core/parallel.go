package core

import (
	"runtime"
	"sync"
)

// rowJob is one contiguous chunk of a DP row for a pool worker.
type rowJob struct {
	comm, comp, costNext, costCur []float64
	choice                        []int32
	lo, hi                        int
}

// rowPool is a persistent pool of workers computing disjoint chunks of
// DP rows. The workers are spawned once per solve and reused for every
// row, replacing the previous per-row goroutine fan-out (p × chunks
// spawns per solve). Within a row, chunks are independent (they only
// read the previous row), so the result is bit-identical to the
// sequential recurrence; the row-to-row dependency stays sequential via
// the per-row barrier in row().
type rowPool struct {
	jobs    chan rowJob
	wg      sync.WaitGroup // per-row barrier
	workers int
}

// newRowPool starts workers goroutines (GOMAXPROCS when workers <= 0)
// that wait for row chunks. Callers must close() the pool when done.
func newRowPool(workers int) *rowPool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	rp := &rowPool{jobs: make(chan rowJob, workers), workers: workers}
	for k := 0; k < workers; k++ {
		go func() {
			for j := range rp.jobs {
				rowRange(j.comm, j.comp, j.costNext, j.costCur, j.choice, j.lo, j.hi)
				rp.wg.Done()
			}
		}()
	}
	return rp
}

// row fills costCur[1..n] and choice[1..n] from costNext across the
// pool and returns once the whole row is done (the caller fills the
// d = 0 entry). Chunks are large enough to amortize channel traffic and
// keep each worker on a contiguous cache range.
func (rp *rowPool) row(comm, comp, costNext, costCur []float64, choice []int32, n int) {
	chunk := (n + rp.workers*4) / (rp.workers * 4)
	if chunk < 1024 {
		chunk = 1024
	}
	for lo := 1; lo <= n; lo += chunk {
		hi := lo + chunk - 1
		if hi > n {
			hi = n
		}
		rp.wg.Add(1)
		rp.jobs <- rowJob{comm: comm, comp: comp, costNext: costNext, costCur: costCur, choice: choice, lo: lo, hi: hi}
	}
	rp.wg.Wait()
}

// close shuts the workers down once all submitted rows have completed.
func (rp *rowPool) close() { close(rp.jobs) }

// Algorithm2Parallel is Algorithm 2 with the inner loop parallelized:
// within one DP row i, the entries cost[d, i] for different d are
// independent (they only read the previous row), so they are computed
// by a persistent pool of workers over chunks of the d range. The
// row-to-row dependency remains sequential. Results are bit-identical
// to Algorithm2.
//
// Parallelism pays off when n is large (the paper's 817,101-item runs
// take tens of seconds single-threaded); for small n the pool costs
// more than it saves, so callers with tiny inputs should prefer
// Algorithm2. Workers <= 0 selects GOMAXPROCS.
func Algorithm2Parallel(procs []Processor, n, workers int) (Result, error) {
	if err := validateDPInput(procs, n); err != nil {
		return Result{}, err
	}
	p := len(procs)

	choice := make([][]int32, p)
	for i := range choice {
		choice[i] = make([]int32, n+1)
	}
	costNext := make([]float64, n+1)
	costCur := make([]float64, n+1)
	comm := make([]float64, n+1)
	comp := make([]float64, n+1)

	tabulate(procs[p-1], n, comm, comp)
	for d := 0; d <= n; d++ {
		costNext[d] = comm[d] + comp[d]
		choice[p-1][d] = int32(d)
	}

	rp := newRowPool(workers)
	defer rp.close()

	for i := p - 2; i >= 0; i-- {
		tabulate(procs[i], n, comm, comp)
		costCur[0] = comm[0] + maxf(comp[0], costNext[0])
		choice[i][0] = 0
		if n >= 1 {
			rp.row(comm, comp, costNext, costCur, choice[i], n)
		}
		costCur, costNext = costNext, costCur
	}

	return reconstruct(procs, n, costNext[n], choice), nil
}

// rowRange fills cost[d] and choice[d] for d in [lo, hi] using the
// Algorithm 2 recurrence (binary-searched crossover + early break).
// It only reads comm, comp and costNext, so disjoint ranges may run
// concurrently. This is the single row kernel shared by
// Algorithm2Parallel and the incremental Plan solver, which is what
// keeps their results bit-identical to Algorithm2.
func rowRange(comm, comp, costNext, costCur []float64, choiceRow []int32, lo, hi int) {
	for d := lo; d <= hi; d++ {
		// Binary search for emax (see Algorithm2Opt).
		l, h := 0, d
		for l < h {
			mid := (l + h) / 2
			if comp[mid] >= costNext[d-mid] {
				h = mid
			} else {
				l = mid + 1
			}
		}
		sol := l
		min := comm[sol] + maxf(comp[sol], costNext[d-sol])
		for e := sol - 1; e >= 0; e-- {
			rest := costNext[d-e]
			m := comm[e] + maxf(comp[e], rest)
			if m < min {
				sol, min = e, m
			} else if rest >= min {
				break
			}
		}
		choiceRow[d] = int32(sol)
		costCur[d] = min
	}
}

package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// rowWork is one DP row being computed across the pool. Workers claim
// disjoint contiguous chunks of the d range by advancing the atomic
// cursor, so dispatching a row costs one channel send per worker — not
// one per chunk — and the chunk size can shrink for load balance
// without growing coordination traffic.
type rowWork struct {
	comm, comp, costNext, costCur []float64
	choice                        []int32
	n, chunk                      int
	cursor                        atomic.Int64
}

// rowPool is a persistent pool of workers computing disjoint chunks of
// DP rows. The workers are spawned once per solve and reused for every
// row. Within a row, chunks are independent (they only read the
// previous row), so the result is bit-identical to the sequential
// recurrence; the row-to-row dependency stays sequential via the
// per-row barrier in row().
type rowPool struct {
	work    chan *rowWork
	wg      sync.WaitGroup // per-row barrier, one Done per worker
	workers int
}

// newRowPool starts workers goroutines (GOMAXPROCS when workers <= 0)
// that wait for rows. Callers must close() the pool when done.
func newRowPool(workers int) *rowPool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	rp := &rowPool{work: make(chan *rowWork, workers), workers: workers}
	for k := 0; k < workers; k++ {
		go func() {
			for w := range rp.work {
				for {
					c := int(w.cursor.Add(1) - 1)
					lo := 1 + c*w.chunk
					if lo > w.n {
						break
					}
					hi := lo + w.chunk - 1
					if hi > w.n {
						hi = w.n
					}
					rowRange(w.comm, w.comp, w.costNext, w.costCur, w.choice, lo, hi)
				}
				rp.wg.Done()
			}
		}()
	}
	return rp
}

// minRowChunk keeps chunks big enough that the per-chunk binary-search
// seed and the atomic claim are amortized; rowChunksPerWorker trades
// tail latency (stragglers finish early chunks while others run) for
// claim traffic.
const (
	minRowChunk        = 256
	rowChunksPerWorker = 8
)

// row fills costCur[1..n] and choice[1..n] from costNext across the
// pool and returns once the whole row is done (the caller fills the
// d = 0 entry). The chunk size adapts to n and the worker count
// instead of a fixed floor, so small rows stay on one worker and large
// rows split finely enough to balance.
func (rp *rowPool) row(comm, comp, costNext, costCur []float64, choice []int32, n int) {
	if n < 1 {
		return
	}
	chunk := (n + rp.workers*rowChunksPerWorker - 1) / (rp.workers * rowChunksPerWorker)
	if chunk < minRowChunk {
		chunk = minRowChunk
	}
	if rp.workers == 1 || n <= chunk {
		// The fan-out would cost more than the row: run it inline.
		rowRange(comm, comp, costNext, costCur, choice, 1, n)
		return
	}
	w := &rowWork{comm: comm, comp: comp, costNext: costNext, costCur: costCur, choice: choice, n: n, chunk: chunk}
	rp.wg.Add(rp.workers)
	for k := 0; k < rp.workers; k++ {
		rp.work <- w
	}
	rp.wg.Wait()
}

// close shuts the workers down once all submitted rows have completed.
func (rp *rowPool) close() { close(rp.work) }

// Algorithm2Parallel is Algorithm 2 with the inner loop parallelized:
// within one DP row i, the entries cost[d, i] for different d are
// independent (they only read the previous row), so they are computed
// by a persistent pool of workers over chunks of the d range. The
// row-to-row dependency remains sequential. Results are bit-identical
// to Algorithm2.
//
// Parallelism pays off when n is large (the paper's 817,101-item runs
// take tens of seconds single-threaded); for small n the pool costs
// more than it saves, so callers with tiny inputs should prefer
// Algorithm2. Workers <= 0 selects GOMAXPROCS.
func Algorithm2Parallel(procs []Processor, n, workers int) (Result, error) {
	if err := validateDPInput(procs, n); err != nil {
		return Result{}, err
	}
	p := len(procs)

	// One contiguous backing array for every choice row: rows are
	// touched in strict sequence, so blocking them together keeps the
	// allocator from scattering p large slices across the heap.
	backing := make([]int32, p*(n+1))
	choice := make([][]int32, p)
	for i := range choice {
		choice[i] = backing[i*(n+1) : (i+1)*(n+1) : (i+1)*(n+1)]
	}
	costNext := make([]float64, n+1)
	costCur := make([]float64, n+1)

	// Duplicate processors (identical cluster nodes are the norm on
	// real grids) share one tabulated comm/comp table through the same
	// per-fingerprint memoization the Engine uses, instead of
	// re-tabulating O(n) entries for every row.
	tc := newTabCache()
	fps := fingerprints(procs)

	comm, comp, done := tc.tables(procs[p-1], fps[p-1], n)
	for d := 0; d <= n; d++ {
		costNext[d] = comm[d] + comp[d]
		choice[p-1][d] = int32(d)
	}
	done()

	rp := newRowPool(workers)
	defer rp.close()

	for i := p - 2; i >= 0; i-- {
		comm, comp, done := tc.tables(procs[i], fps[i], n)
		costCur[0] = comm[0] + maxf(comp[0], costNext[0])
		choice[i][0] = 0
		rp.row(comm, comp, costNext, costCur, choice[i], n)
		done()
		costCur, costNext = costNext, costCur
	}

	return reconstruct(procs, n, costNext[n], choice), nil
}

// rowRange fills cost[d] and choice[d] for d in [lo, hi] using the
// Algorithm 2 recurrence (binary-searched crossover + early break).
// It only reads comm, comp and costNext, so disjoint ranges may run
// concurrently. This is the single row kernel shared by
// Algorithm2Parallel, the incremental Plan solver, and the coarse
// refinement pass, which is what keeps their results bit-identical to
// Algorithm2.
//
// The crossover emax(d) — the smallest e with comp[e] >= costNext[d-e]
// (or d when no such e exists) — is monotone in d, and moreover
// advances by at most one per cell: if comp[e] >= costNext[d-1-e] then
// comp[e+1] >= costNext[d-(e+1)]. So only the first cell of a range
// pays a binary search; every following cell re-seeds emax from its
// left neighbor with a single comparison, replacing O(log n) scattered
// probes per cell with an amortized O(1) sequential access. The seeded
// value is the same lower bound the binary search would return, so the
// kernel stays bit-identical to Algorithm2Opt's per-cell search.
func rowRange(comm, comp, costNext, costCur []float64, choiceRow []int32, lo, hi int) {
	if lo > hi {
		return
	}
	// Hoist the bounds checks: every index below is within [0, hi].
	comm = comm[: hi+1 : hi+1]
	comp = comp[: hi+1 : hi+1]
	costNext = costNext[: hi+1 : hi+1]
	costCur = costCur[: hi+1 : hi+1]
	choiceRow = choiceRow[: hi+1 : hi+1]

	// Seed emax at d = lo with the usual binary search.
	l, h := 0, lo
	for l < h {
		mid := int(uint(l+h) >> 1)
		if comp[mid] >= costNext[lo-mid] {
			h = mid
		} else {
			l = mid + 1
		}
	}
	emax := l

	for d := lo; d <= hi; d++ {
		if d > lo && emax < d && comp[emax] < costNext[d-emax] {
			// The crossover moved: it advances by exactly one.
			emax++
		}
		// For e >= emax the objective is Tcomm+Tcomp, both increasing,
		// so emax is the best candidate there.
		sol := emax
		min := comm[sol] + maxf(comp[sol], costNext[d-sol])
		// Descending scan over e < sol, where the max is realized by
		// costNext[d-e].
		for e := sol - 1; e >= 0; e-- {
			rest := costNext[d-e]
			m := comm[e] + maxf(comp[e], rest)
			if m < min {
				sol, min = e, m
			} else if rest >= min {
				// costNext[d-e] only grows as e decreases and Tcomm is
				// non-negative, so no smaller e can win.
				break
			}
		}
		choiceRow[d] = int32(sol)
		costCur[d] = min
	}
}

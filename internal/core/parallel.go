package core

import (
	"runtime"
	"sync"
)

// Algorithm2Parallel is Algorithm 2 with the inner loop parallelized:
// within one DP row i, the entries cost[d, i] for different d are
// independent (they only read the previous row), so they can be
// computed by a pool of workers over chunks of the d range. The
// row-to-row dependency remains sequential. Results are bit-identical
// to Algorithm2.
//
// Parallelism pays off when n is large (the paper's 817,101-item runs
// take tens of seconds single-threaded); for small n the goroutine
// fan-out costs more than it saves, so callers with tiny inputs should
// prefer Algorithm2. Workers <= 0 selects GOMAXPROCS.
func Algorithm2Parallel(procs []Processor, n, workers int) (Result, error) {
	if err := validateDPInput(procs, n); err != nil {
		return Result{}, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := len(procs)

	choice := make([][]int32, p)
	for i := range choice {
		choice[i] = make([]int32, n+1)
	}
	costNext := make([]float64, n+1)
	costCur := make([]float64, n+1)
	comm := make([]float64, n+1)
	comp := make([]float64, n+1)

	tabulate(procs[p-1], n, comm, comp)
	for d := 0; d <= n; d++ {
		costNext[d] = comm[d] + comp[d]
		choice[p-1][d] = int32(d)
	}

	// Chunked parallel sweep of one row. Chunks are large enough to
	// amortize scheduling and keep each worker on a contiguous cache
	// range.
	chunk := (n + workers*4) / (workers * 4)
	if chunk < 1024 {
		chunk = 1024
	}

	for i := p - 2; i >= 0; i-- {
		tabulate(procs[i], n, comm, comp)
		costCur[0] = comm[0] + maxf(comp[0], costNext[0])
		choice[i][0] = 0

		var wg sync.WaitGroup
		for lo := 1; lo <= n; lo += chunk {
			hi := lo + chunk - 1
			if hi > n {
				hi = n
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				rowRange(comm, comp, costNext, costCur, choice[i], lo, hi)
			}(lo, hi)
		}
		wg.Wait()
		costCur, costNext = costNext, costCur
	}

	return reconstruct(procs, n, costNext[n], choice), nil
}

// rowRange fills cost[d] and choice[d] for d in [lo, hi] using the
// Algorithm 2 recurrence (binary-searched crossover + early break).
// It only reads comm, comp and costNext, so disjoint ranges may run
// concurrently.
func rowRange(comm, comp, costNext, costCur []float64, choiceRow []int32, lo, hi int) {
	for d := lo; d <= hi; d++ {
		// Binary search for emax (see Algorithm2Opt).
		l, h := 0, d
		for l < h {
			mid := (l + h) / 2
			if comp[mid] >= costNext[d-mid] {
				h = mid
			} else {
				l = mid + 1
			}
		}
		sol := l
		min := comm[sol] + maxf(comp[sol], costNext[d-sol])
		for e := sol - 1; e >= 0; e-- {
			rest := costNext[d-e]
			m := comm[e] + maxf(comp[e], rest)
			if m < min {
				sol, min = e, m
			} else if rest >= min {
				break
			}
		}
		choiceRow[d] = int32(sol)
		costCur[d] = min
	}
}

package core

import (
	"fmt"
	"sort"
)

// This file implements the degraded-network fallback rebalancer: a
// deterministic integer diffusion scheme in the spirit of first-order
// diffusive load balancing (Cybenko 1989), adapted to the paper's
// heterogeneous setting.
//
// The exact solvers in this package optimize Eq. (2) against a cost
// model. When the network degrades — links flapping, sites partitioned,
// observed transfer times diverging from the model — that model is
// stale and an exact DP re-solve optimizes the wrong objective.
// Diffuse instead needs only three local facts: which processors are
// currently alive, which pairs can currently talk (the live adjacency),
// and how fast each processor computes. It iteratively shifts items
// across live edges toward a compute-speed-weighted balance, so items
// never traverse a cut and the result is usable even when the root can
// only see part of the graph.
//
// The scheme runs in two deterministic phases per component:
//
//  1. Diffusion sweeps: edges are visited in a fixed sorted order and
//     each edge moves floor(d/2) items from its overloaded endpoint,
//     where d is the excess difference. Every move strictly decreases
//     the potential sum(excess²), so the phase terminates with all
//     adjacent excess differences at most 1.
//  2. Stray drain: the leftover ±1 units are routed one BFS
//     shortest path at a time (lowest-index tie-breaks) until every
//     processor sits exactly on its target share.
//
// The result is exact with respect to the diffusion targets and fully
// deterministic, but the targets themselves ignore the single-port
// serialization of Eq. (1) — that is the price of not trusting the
// communication model. Empirically (see the chaos harness sweep and
// DESIGN.md §12) the makespan stays within
// DiffusionBandFactor·T_opt + GuaranteeBound of the exact DP on the
// platforms in this repo; that band is checked as a chaos invariant,
// not proven.

// DiffusionBandFactor is the documented multiplicative quality band of
// the diffusion fallback relative to the exact DP makespan:
//
//	T_diffusion ≤ DiffusionBandFactor·T_exact + GuaranteeBound(procs)
//
// The factor is empirical, tuned over the chaos harness's seeded
// platform sweep (100+ seeds, 3 graph sizes); it is deliberately loose
// because diffusion ignores link heterogeneity by design.
const DiffusionBandFactor = 3.0

// compProbe mirrors bandwidthProbe for computation costs.
const compProbe = bandwidthProbe

// MarginalCompCost estimates the per-item computation cost of p by the
// secant slope of Tcomp between 1 item and compProbe items, the
// computational twin of MarginalCommCost.
func MarginalCompCost(p Processor) float64 {
	lo, hi := p.Comp.Eval(1), p.Comp.Eval(compProbe)
	return (hi - lo) / float64(compProbe-1)
}

// DiffusionConfig describes one diffusion rebalance.
type DiffusionConfig struct {
	// Procs are the live processors, root last as everywhere else.
	Procs []Processor
	// Adjacency holds, for each processor index, the indices it can
	// currently exchange items with. Edges must be symmetric; self
	// loops and out-of-range neighbors are rejected.
	Adjacency [][]int
	// Load is the current share of each processor. The usual degraded
	// re-scatter starts with the whole reclaimed pool at the root.
	Load Distribution
	// MaxSweeps bounds phase 1. Zero means 8·p sweeps, far more than
	// the potential argument needs on the graphs this repo builds.
	MaxSweeps int
}

// DiffusionStats reports how a diffusion run converged.
type DiffusionStats struct {
	// Sweeps is the number of phase-1 edge sweeps performed.
	Sweeps int
	// Drained is the number of items routed in phase 2.
	Drained int
	// Components is the number of connected components balanced.
	Components int
}

// Diffuse rebalances cfg.Load across the live adjacency and returns the
// resulting distribution with its Eq. (2) makespan, plus convergence
// stats. Items never cross between connected components: each component
// balances its own total, weighted by 1/MarginalCompCost. Within every
// component the result hits the weighted targets exactly.
func Diffuse(cfg DiffusionConfig) (Result, DiffusionStats, error) {
	var stats DiffusionStats
	p := len(cfg.Procs)
	if err := ValidateProcessors(cfg.Procs); err != nil {
		return Result{}, stats, err
	}
	if len(cfg.Load) != p {
		return Result{}, stats, fmt.Errorf("core: diffusion load has %d shares for %d processors", len(cfg.Load), p)
	}
	if len(cfg.Adjacency) != p {
		return Result{}, stats, fmt.Errorf("core: diffusion adjacency has %d rows for %d processors", len(cfg.Adjacency), p)
	}
	for i, x := range cfg.Load {
		if x < 0 {
			return Result{}, stats, fmt.Errorf("core: diffusion load %d is negative (%d)", i, x)
		}
	}
	edges, err := normalizeEdges(cfg.Adjacency)
	if err != nil {
		return Result{}, stats, err
	}

	load := make(Distribution, p)
	copy(load, cfg.Load)
	comps := components(p, cfg.Adjacency)
	stats.Components = len(comps)
	target := make([]int, p)
	for _, comp := range comps {
		compTargets(cfg.Procs, load, comp, target)
	}

	// Phase 1: potential-decreasing edge sweeps.
	maxSweeps := cfg.MaxSweeps
	if maxSweeps <= 0 {
		maxSweeps = 8 * p
	}
	excess := func(i int) int { return load[i] - target[i] }
	for s := 0; s < maxSweeps; s++ {
		moved := false
		for _, e := range edges {
			d := excess(e[0]) - excess(e[1])
			from, to := e[0], e[1]
			if d < 0 {
				d, from, to = -d, e[1], e[0]
			}
			t := d / 2
			if t > load[from] {
				t = load[from]
			}
			if t <= 0 {
				continue
			}
			load[from] -= t
			load[to] += t
			moved = true
		}
		stats.Sweeps = s + 1
		if !moved {
			break
		}
	}

	// Phase 2: drain the leftover stray units along BFS paths.
	for {
		src := -1
		for i := 0; i < p; i++ {
			if excess(i) > 0 {
				src = i
				break
			}
		}
		if src < 0 {
			break
		}
		path := bfsToDeficit(cfg.Adjacency, src, func(i int) bool { return excess(i) < 0 })
		if path == nil {
			// Unbalanceable component: should not happen since targets
			// sum to the component load, but never loop on it.
			break
		}
		dst := path[len(path)-1]
		m := excess(src)
		if d := -excess(dst); d < m {
			m = d
		}
		for k := 0; k+1 < len(path); k++ {
			load[path[k]] -= m
			load[path[k+1]] += m
		}
		stats.Drained += m
	}

	if err := load.Validate(p, cfg.Load.Sum()); err != nil {
		return Result{}, stats, fmt.Errorf("core: diffusion broke conservation: %w", err)
	}
	return Result{Distribution: load, Makespan: Makespan(cfg.Procs, load)}, stats, nil
}

// DiffusePool is the degraded re-scatter entry point: the whole
// reclaimed pool of n items sits at the root (last processor) and is
// diffused across the live adjacency.
func DiffusePool(procs []Processor, adjacency [][]int, n int) (Result, DiffusionStats, error) {
	load := make(Distribution, len(procs))
	if len(procs) > 0 {
		load[len(procs)-1] = n
	}
	return Diffuse(DiffusionConfig{Procs: procs, Adjacency: adjacency, Load: load})
}

// normalizeEdges flattens an adjacency list into a deduplicated,
// sorted list of undirected edges {lo, hi}, verifying symmetry.
func normalizeEdges(adj [][]int) ([][2]int, error) {
	p := len(adj)
	seen := make(map[[2]int]byte, p)
	for i, row := range adj {
		for _, j := range row {
			if j < 0 || j >= p {
				return nil, fmt.Errorf("core: diffusion adjacency %d has out-of-range neighbor %d", i, j)
			}
			if j == i {
				return nil, fmt.Errorf("core: diffusion adjacency %d has a self loop", i)
			}
			e := [2]int{i, j}
			var dir byte = 1
			if j < i {
				e = [2]int{j, i}
				dir = 2
			}
			seen[e] |= dir
		}
	}
	edges := make([][2]int, 0, len(seen))
	for e, dirs := range seen {
		if dirs != 3 {
			return nil, fmt.Errorf("core: diffusion adjacency edge %d-%d is not symmetric", e[0], e[1])
		}
		edges = append(edges, e)
	}
	sort.Slice(edges, func(a, b int) bool {
		if edges[a][0] != edges[b][0] {
			return edges[a][0] < edges[b][0]
		}
		return edges[a][1] < edges[b][1]
	})
	return edges, nil
}

// components returns the connected components of the adjacency graph,
// each sorted ascending, ordered by their smallest member.
func components(p int, adj [][]int) [][]int {
	visited := make([]bool, p)
	var comps [][]int
	for start := 0; start < p; start++ {
		if visited[start] {
			continue
		}
		comp := []int{start}
		visited[start] = true
		for q := 0; q < len(comp); q++ {
			for _, nb := range adj[comp[q]] {
				if nb >= 0 && nb < p && !visited[nb] {
					visited[nb] = true
					comp = append(comp, nb)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// compTargets writes the weighted integer targets for one component
// into target. Shares are proportional to compute speed
// (1/MarginalCompCost) and rounded by largest remainder, ties to the
// lowest index, so they sum exactly to the component's load.
func compTargets(procs []Processor, load Distribution, comp []int, target []int) {
	total := 0
	for _, i := range comp {
		total += load[i]
	}
	const minCost = 1e-12
	weights := make([]float64, len(comp))
	wsum := 0.0
	for k, i := range comp {
		c := MarginalCompCost(procs[i])
		if c < minCost {
			c = minCost
		}
		weights[k] = 1 / c
		wsum += weights[k]
	}
	assigned := 0
	rem := make([]float64, len(comp))
	for k, i := range comp {
		share := float64(total) * weights[k] / wsum
		whole := int(share)
		target[i] = whole
		rem[k] = share - float64(whole)
		assigned += whole
	}
	order := make([]int, len(comp))
	for k := range order {
		order[k] = k
	}
	sort.SliceStable(order, func(a, b int) bool { return rem[order[a]] > rem[order[b]] })
	for _, k := range order {
		if assigned >= total {
			break
		}
		target[comp[k]]++
		assigned++
	}
}

// bfsToDeficit finds the shortest path from src to the nearest node
// satisfying deficit, exploring neighbors in listed order and breaking
// distance ties by discovery order. Returns nil if none is reachable.
func bfsToDeficit(adj [][]int, src int, deficit func(int) bool) []int {
	p := len(adj)
	parent := make([]int, p)
	for i := range parent {
		parent[i] = -2
	}
	parent[src] = -1
	queue := []int{src}
	for q := 0; q < len(queue); q++ {
		v := queue[q]
		if v != src && deficit(v) {
			var path []int
			for u := v; u != -1; u = parent[u] {
				path = append(path, u)
			}
			for a, b := 0, len(path)-1; a < b; a, b = a+1, b-1 {
				path[a], path[b] = path[b], path[a]
			}
			return path
		}
		for _, nb := range adj[v] {
			if nb >= 0 && nb < p && parent[nb] == -2 {
				parent[nb] = v
				queue = append(queue, nb)
			}
		}
	}
	return nil
}

package core

import (
	"fmt"

	"repro/internal/cost"
)

// Algorithm1 computes an optimal distribution of n items with the
// paper's basic dynamic program (Algorithm 1). It only requires the
// cost functions to be non-negative and null at x = 0, and runs in
// O(p·n²) time and O(p·n) space.
//
// The recurrence follows Section 3.2: the cost of processing d items on
// processors Pi..Pp is
//
//	cost[d, i] = min_{0<=e<=d} Tcomm(i,e) + max(Tcomp(i,e), cost[d-e, i+1])
//
// with cost[d, p] = Tcomm(p,d) + Tcomp(p,d). Among equal-cost choices
// the smallest share e is kept (ties broken toward earlier processors
// receiving less), so results are deterministic.
func Algorithm1(procs []Processor, n int) (Result, error) {
	if err := validateDPInput(procs, n); err != nil {
		return Result{}, err
	}
	p := len(procs)

	// choice[i][d] is the share given to processor i when d items
	// remain for processors i..p-1.
	choice := make([][]int32, p)
	for i := range choice {
		choice[i] = make([]int32, n+1)
	}

	// costNext holds cost[., i+1]; costCur is being filled for i.
	costNext := make([]float64, n+1)
	costCur := make([]float64, n+1)
	// comm and comp tabulate the current processor's cost functions so
	// the O(n²) inner loop indexes flat arrays instead of going
	// through interface dispatch.
	comm := make([]float64, n+1)
	comp := make([]float64, n+1)

	// Base: last processor takes everything that remains.
	tabulate(procs[p-1], n, comm, comp)
	for d := 0; d <= n; d++ {
		costNext[d] = comm[d] + comp[d]
		choice[p-1][d] = int32(d)
	}

	for i := p - 2; i >= 0; i-- {
		tabulate(procs[i], n, comm, comp)
		costCur[0] = comm[0] + maxf(comp[0], costNext[0])
		choice[i][0] = 0
		for d := 1; d <= n; d++ {
			// e = 0 initializer (the paper's line 11).
			sol := 0
			min := comm[0] + maxf(comp[0], costNext[d])
			for e := 1; e <= d; e++ {
				m := comm[e] + maxf(comp[e], costNext[d-e])
				if m < min {
					sol, min = e, m
				}
			}
			choice[i][d] = int32(sol)
			costCur[d] = min
		}
		costCur, costNext = costNext, costCur
	}

	return reconstruct(procs, n, costNext[n], choice), nil
}

// tabulate fills comm[e] = Tcomm(i,e) and comp[e] = Tcomp(i,e) for
// e in [0, n], using closed forms for the linear and affine cost
// types and falling back to per-entry evaluation otherwise.
func tabulate(pr Processor, n int, comm, comp []float64) {
	fillCosts(pr.Comm, n, comm)
	fillCosts(pr.Comp, n, comp)
}

func fillCosts(f cost.Function, n int, out []float64) {
	switch cf := f.(type) {
	case cost.Linear:
		out[0] = 0
		for e := 1; e <= n; e++ {
			out[e] = cf.PerItem * float64(e)
		}
	case cost.Affine:
		out[0] = 0
		for e := 1; e <= n; e++ {
			out[e] = cf.Fixed + cf.PerItem*float64(e)
		}
	default:
		for e := 0; e <= n; e++ {
			out[e] = f.Eval(e)
		}
	}
}

// Algorithm2Options selects the individual optimizations of Algorithm 2
// so their effect can be measured (ablation benchmarks). The zero value
// enables everything, i.e. the full Algorithm 2.
type Algorithm2Options struct {
	// DisableBinarySearch replaces the binary search for the
	// communication/computation crossover (the paper's lines 16-26)
	// with a scan starting at e = d.
	DisableBinarySearch bool
	// DisableEarlyBreak removes the monotonicity cutoff (the paper's
	// lines 32-34) from the descending scan.
	DisableEarlyBreak bool
}

// Algorithm2 computes an optimal distribution with the paper's
// optimized dynamic program (Algorithm 2). It requires the cost
// functions to be increasing; same worst-case complexity as Algorithm
// 1 (O(p·n²)) but O(p·n) in the best case and far faster in practice.
func Algorithm2(procs []Processor, n int) (Result, error) {
	return Algorithm2Opt(procs, n, Algorithm2Options{})
}

// Algorithm2Opt is Algorithm2 with explicit optimization switches.
func Algorithm2Opt(procs []Processor, n int, opts Algorithm2Options) (Result, error) {
	if err := validateDPInput(procs, n); err != nil {
		return Result{}, err
	}
	p := len(procs)

	choice := make([][]int32, p)
	for i := range choice {
		choice[i] = make([]int32, n+1)
	}
	costNext := make([]float64, n+1)
	costCur := make([]float64, n+1)
	comm := make([]float64, n+1)
	comp := make([]float64, n+1)

	tabulate(procs[p-1], n, comm, comp)
	for d := 0; d <= n; d++ {
		costNext[d] = comm[d] + comp[d]
		choice[p-1][d] = int32(d)
	}

	for i := p - 2; i >= 0; i-- {
		tabulate(procs[i], n, comm, comp)
		costCur[0] = comm[0] + maxf(comp[0], costNext[0])
		choice[i][0] = 0
		for d := 1; d <= n; d++ {
			var sol int
			var min float64
			if opts.DisableBinarySearch {
				// Start the descending scan from e = d.
				sol = d
				min = comm[d] + maxf(comp[d], costNext[0])
			} else {
				// Binary search for emax, the smallest e with
				// Tcomp(i,e) >= cost[d-e, i+1]. The predicate is
				// monotone because Tcomp increases with e while
				// cost[d-e, i+1] decreases. emax always exists in
				// [0, d]: at e = d the right side is cost[0, i+1],
				// which is 0 for null-at-zero cost functions.
				lo, hi := 0, d // invariant: predicate false at lo-1 ... search space [lo, hi]
				for lo < hi {
					mid := (lo + hi) / 2
					if comp[mid] >= costNext[d-mid] {
						hi = mid
					} else {
						lo = mid + 1
					}
				}
				emax := lo
				// For e >= emax the objective is Tcomm+Tcomp, both
				// increasing, so emax is the best candidate there.
				sol = emax
				min = comm[emax] + maxf(comp[emax], costNext[d-emax])
			}
			// Descending scan over e < sol, where the max is realized
			// by cost[d-e, i+1].
			for e := sol - 1; e >= 0; e-- {
				rest := costNext[d-e]
				m := comm[e] + maxf(comp[e], rest)
				if m < min {
					sol, min = e, m
				} else if !opts.DisableEarlyBreak && rest >= min {
					// cost[d-e, i+1] only grows as e decreases and
					// Tcomm is non-negative, so no smaller e can win.
					break
				}
			}
			choice[i][d] = int32(sol)
			costCur[d] = min
		}
		costCur, costNext = costNext, costCur
	}

	return reconstruct(procs, n, costNext[n], choice), nil
}

func validateDPInput(procs []Processor, n int) error {
	if err := ValidateProcessors(procs); err != nil {
		return err
	}
	if n < 0 {
		return fmt.Errorf("core: negative item count %d", n)
	}
	return nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// reconstruct walks the choice table from the full problem down to the
// last processor and evaluates the achieved makespan with Eq. (2). The
// evaluated makespan equals the DP cost for consistent cost functions;
// Result reports the evaluated value so that all solvers are compared
// on the same footing.
func reconstruct(procs []Processor, n int, dpCost float64, choice [][]int32) Result {
	p := len(procs)
	dist := make(Distribution, p)
	d := n
	for i := 0; i < p; i++ {
		e := int(choice[i][d])
		dist[i] = e
		d -= e
	}
	return Result{Distribution: dist, Makespan: Makespan(procs, dist)}
}

// RequireIncreasing verifies (by probing every count up to n) that all
// processors' cost functions are increasing, the precondition of
// Algorithm 2. Processors whose functions declare an analytic class of
// Increasing or better are trusted without probing.
func RequireIncreasing(procs []Processor, n int) error {
	for i, pr := range procs {
		for _, f := range []cost.Function{pr.Comm, pr.Comp} {
			if cost.ClassOf(f) >= cost.Increasing {
				continue
			}
			if err := cost.CheckIncreasing(f, n); err != nil {
				return fmt.Errorf("core: processor %d (%s): %w", i, pr.Name, err)
			}
		}
	}
	return nil
}

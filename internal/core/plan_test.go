package core

import (
	"testing"

	"repro/internal/cost"
)

// planTestProcs builds a small heterogeneous increasing-cost platform
// (root last, zero comm) mixing the fingerprintable cost types.
func planTestProcs() []Processor {
	return []Processor{
		{Name: "a", Comm: cost.Linear{PerItem: 0.25}, Comp: cost.Affine{Fixed: 0.5, PerItem: 1.0}},
		{Name: "b", Comm: cost.Affine{Fixed: 0.125, PerItem: 0.5}, Comp: cost.Linear{PerItem: 0.75}},
		{Name: "c", Comm: cost.Linear{PerItem: 0.5}, Comp: cost.Table{Values: []float64{0, 1, 2, 2.5, 3, 3.5, 4, 4.5, 5, 5.5, 6, 6.5, 7, 7.5, 8, 8.5, 9, 9.5, 10, 10.5, 11, 11.5, 12, 12.5, 13, 13.5, 14, 14.5, 15, 15.5, 16}, Increasing: true}},
		{Name: "d", Comm: cost.Linear{PerItem: 0.125}, Comp: cost.Linear{PerItem: 1.25}},
		{Name: "root", Comm: cost.Zero, Comp: cost.Linear{PerItem: 1.0}},
	}
}

func sameDist(a, b Distribution) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestPlanLookupMatchesAlgorithm2 checks every suffix subproblem the
// plan can answer against a fresh Algorithm 2 solve.
func TestPlanLookupMatchesAlgorithm2(t *testing.T) {
	procs := planTestProcs()
	const n = 40
	pl, err := SolvePlan(procs, n)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Items() != n || pl.Size() != len(procs) {
		t.Fatalf("Items/Size = %d/%d, want %d/%d", pl.Items(), pl.Size(), n, len(procs))
	}
	for i := 0; i < len(procs); i++ {
		for d := 0; d <= n; d++ {
			got, err := pl.Lookup(d, i)
			if err != nil {
				t.Fatal(err)
			}
			want, err := Algorithm2(procs[i:], d)
			if err != nil {
				t.Fatal(err)
			}
			if !sameDist(got.Distribution, want.Distribution) || got.Makespan != want.Makespan {
				t.Fatalf("Lookup(%d, %d) = %v (%g), fresh = %v (%g)",
					d, i, got.Distribution, got.Makespan, want.Distribution, want.Makespan)
			}
		}
	}
}

// TestPlanLookupBounds checks the error paths.
func TestPlanLookupBounds(t *testing.T) {
	pl, err := SolvePlan(planTestProcs(), 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []struct{ d, i int }{{-1, 0}, {11, 0}, {5, -1}, {5, 5}} {
		if _, err := pl.Lookup(bad.d, bad.i); err == nil {
			t.Errorf("Lookup(%d, %d): no error", bad.d, bad.i)
		}
	}
}

// TestPlanResolvePureSuffix crashes the first-served processor: the
// survivors are a pure suffix, so no DP rows are recomputed and the
// derived plan keeps the full warm-start width.
func TestPlanResolvePureSuffix(t *testing.T) {
	procs := planTestProcs()
	const n = 40
	pl, err := SolvePlan(procs, n)
	if err != nil {
		t.Fatal(err)
	}
	survivors := procs[1:]
	for _, remaining := range []int{n, n / 2, 1, 0} {
		got, err := pl.Resolve(remaining, survivors)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Algorithm2(survivors, remaining)
		if err != nil {
			t.Fatal(err)
		}
		if !sameDist(got.Distribution, want.Distribution) || got.Makespan != want.Makespan {
			t.Fatalf("Resolve(%d) = %v (%g), fresh = %v (%g)",
				remaining, got.Distribution, got.Makespan, want.Distribution, want.Makespan)
		}
	}
	d, err := pl.resolve(nil, n, survivors, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.n != n {
		t.Fatalf("pure-suffix derived plan width = %d, want %d", d.n, n)
	}
	for j := range d.rows {
		if d.rows[j].owned {
			t.Fatalf("pure-suffix derived row %d owned, want borrowed", j)
		}
	}
	for j := 1; j < len(pl.rows); j++ {
		if !pl.rows[j].lent {
			t.Fatalf("source row %d not marked lent", j)
		}
	}
}

// TestPlanResolvePartialSuffix crashes a middle processor: the suffix
// rows after it are reused, the prefix rows are rebuilt, and the result
// still matches a fresh solve bit for bit.
func TestPlanResolvePartialSuffix(t *testing.T) {
	procs := planTestProcs()
	const n = 40
	for crash := 1; crash < len(procs)-1; crash++ {
		pl, err := SolvePlan(procs, n)
		if err != nil {
			t.Fatal(err)
		}
		survivors := make([]Processor, 0, len(procs)-1)
		survivors = append(survivors, procs[:crash]...)
		survivors = append(survivors, procs[crash+1:]...)
		for _, remaining := range []int{n, 17, 0} {
			got, err := pl.Resolve(remaining, survivors)
			if err != nil {
				t.Fatal(err)
			}
			want, err := Algorithm2(survivors, remaining)
			if err != nil {
				t.Fatal(err)
			}
			if !sameDist(got.Distribution, want.Distribution) || got.Makespan != want.Makespan {
				t.Fatalf("crash=%d Resolve(%d) = %v (%g), fresh = %v (%g)",
					crash, remaining, got.Distribution, got.Makespan, want.Distribution, want.Makespan)
			}
		}
	}
}

// TestPlanResolveNoOverlap hands Resolve a platform sharing nothing
// with the plan; it must fall back to a fresh solve and still be exact.
func TestPlanResolveNoOverlap(t *testing.T) {
	pl, err := SolvePlan(planTestProcs(), 20)
	if err != nil {
		t.Fatal(err)
	}
	other := []Processor{
		{Name: "x", Comm: cost.Linear{PerItem: 3}, Comp: cost.Linear{PerItem: 2}},
		{Name: "y", Comm: cost.Zero, Comp: cost.Linear{PerItem: 5}},
	}
	got, err := pl.Resolve(15, other)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Algorithm2(other, 15)
	if err != nil {
		t.Fatal(err)
	}
	if !sameDist(got.Distribution, want.Distribution) {
		t.Fatalf("got %v, want %v", got.Distribution, want.Distribution)
	}
}

// TestPlanResolveWiderThanPlan asks for more items than the plan was
// solved for; the rows are too narrow, so Resolve re-solves fresh.
func TestPlanResolveWiderThanPlan(t *testing.T) {
	procs := planTestProcs()
	pl, err := SolvePlan(procs, 10)
	if err != nil {
		t.Fatal(err)
	}
	got, err := pl.Resolve(30, procs[1:])
	if err != nil {
		t.Fatal(err)
	}
	want, err := Algorithm2(procs[1:], 30)
	if err != nil {
		t.Fatal(err)
	}
	if !sameDist(got.Distribution, want.Distribution) {
		t.Fatalf("got %v, want %v", got.Distribution, want.Distribution)
	}
}

// TestPlanOpaqueCostsNotReused wraps one survivor's cost in an opaque
// closure: its row must never be borrowed, but Resolve still returns
// the exact answer through the fresh-solve fallback.
func TestPlanOpaqueCostsNotReused(t *testing.T) {
	procs := planTestProcs()
	opaque := make([]Processor, len(procs))
	copy(opaque, procs)
	opaque[2].Comp = cost.Classified{F: cost.Func(func(x int) float64 { return 2 * float64(x) }), C: cost.Increasing}
	pl, err := SolvePlan(opaque, 20)
	if err != nil {
		t.Fatal(err)
	}
	if pl.fps[2] != "" {
		t.Fatalf("opaque processor fingerprint = %q, want empty", pl.fps[2])
	}
	got, err := pl.Resolve(12, opaque[1:])
	if err != nil {
		t.Fatal(err)
	}
	want, err := Algorithm2(opaque[1:], 12)
	if err != nil {
		t.Fatal(err)
	}
	if !sameDist(got.Distribution, want.Distribution) {
		t.Fatalf("got %v, want %v", got.Distribution, want.Distribution)
	}
}

// TestEngineSolveMatrix drives Engine.Solve through cold, cache-hit,
// warm-start and fallback paths and checks every answer against the
// dispatch-equivalent fresh solver.
func TestEngineSolveMatrix(t *testing.T) {
	e := NewEngine(4)
	procs := planTestProcs()
	const n = 40

	check := func(procs []Processor, n int, fresh Solver) {
		t.Helper()
		got, err := e.Solve(procs, n)
		if err != nil {
			t.Fatal(err)
		}
		want, err := fresh(procs, n)
		if err != nil {
			t.Fatal(err)
		}
		if !sameDist(got.Distribution, want.Distribution) || got.Makespan != want.Makespan {
			t.Fatalf("engine = %v (%g), fresh = %v (%g)",
				got.Distribution, got.Makespan, want.Distribution, want.Makespan)
		}
	}

	check(procs, n, Algorithm2) // cold
	if s := e.Stats(); s.ColdSolves != 1 {
		t.Fatalf("stats after cold solve: %+v", s)
	}
	check(procs, n, Algorithm2) // exact cache hit
	check(procs, n/2, Algorithm2)
	if s := e.Stats(); s.CacheHits != 2 {
		t.Fatalf("stats after warm lookups: %+v", s)
	}
	check(procs[1:], n, Algorithm2) // crash of first-served: warm resolve
	check(procs[2:], n-5, Algorithm2)
	if s := e.Stats(); s.Resolves != 2 {
		t.Fatalf("stats after resolves: %+v", s)
	}

	// General-class platform falls back to Algorithm 1.
	general := []Processor{
		{Name: "g", Comm: cost.Table{Values: []float64{0, 5, 3, 7}}, Comp: cost.Linear{PerItem: 1}},
		{Name: "root", Comm: cost.Zero, Comp: cost.Linear{PerItem: 1}},
	}
	check(general, 6, Algorithm1)
	// Increasing but opaque falls back to fresh Algorithm 2.
	opaque := []Processor{
		{Name: "o", Comm: cost.Classified{F: cost.Func(func(x int) float64 { return float64(x) }), C: cost.Increasing}, Comp: cost.Linear{PerItem: 1}},
		{Name: "root", Comm: cost.Zero, Comp: cost.Linear{PerItem: 1}},
	}
	check(opaque, 6, Algorithm2)
	if s := e.Stats(); s.Fallbacks != 2 {
		t.Fatalf("stats after fallbacks: %+v", s)
	}
}

// TestPlanCacheLRU checks capacity bounding, recency order and that
// lent rows survive their owner's eviction.
func TestPlanCacheLRU(t *testing.T) {
	c := NewPlanCache(2)
	procs := planTestProcs()
	mk := func(n int) *Plan {
		pl, err := SolvePlan(procs, n)
		if err != nil {
			t.Fatal(err)
		}
		return pl
	}
	a, b := mk(10), mk(12)
	c.Put("a", a)
	c.Put("b", b)
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
	if c.Get("a") != a { // bumps a's recency; b is now LRU
		t.Fatal("a not cached")
	}
	c.Put("c", mk(14))
	if c.Len() != 2 || c.Get("b") != nil {
		t.Fatalf("b not evicted (len %d)", c.Len())
	}
	if c.Get("a") != a || c.Get("c") == nil {
		t.Fatal("wrong survivors after eviction")
	}
	// Evicting the owner of lent rows must not recycle them.
	d, err := a.resolve(nil, 10, procs[1:], 0)
	if err != nil {
		t.Fatal(err)
	}
	c.Put("d", d) // evicts "a"; its release must skip the lent rows
	c.Put("e", mk(8))
	if c.Get("a") != nil {
		t.Fatal("a still cached")
	}
	got, err := d.Lookup(10, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Algorithm2(procs[1:], 10)
	if err != nil {
		t.Fatal(err)
	}
	if !sameDist(got.Distribution, want.Distribution) {
		t.Fatalf("derived plan corrupted after owner eviction: got %v, want %v", got.Distribution, want.Distribution)
	}
}

// TestPlanSolveParallelIdentical forces the pooled row fill past the
// parallel threshold and checks bit-identity with the sequential path.
func TestPlanSolveParallelIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("large n")
	}
	procs := planTestProcs()
	n := planParallelThreshold + 123
	pl, err := SolvePlan(procs, n)
	if err != nil {
		t.Fatal(err)
	}
	got, err := pl.Lookup(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Algorithm2(procs, n)
	if err != nil {
		t.Fatal(err)
	}
	if !sameDist(got.Distribution, want.Distribution) || got.Makespan != want.Makespan {
		t.Fatalf("parallel plan fill differs: got %v (%g), want %v (%g)",
			got.Distribution, got.Makespan, want.Distribution, want.Makespan)
	}
}

// TestPlatformClass pins the dispatch rule.
func TestPlatformClass(t *testing.T) {
	procs := planTestProcs()
	if got := PlatformClass(procs); got != cost.Increasing {
		t.Fatalf("class = %v, want increasing", got)
	}
	linear := []Processor{
		{Name: "l", Comm: cost.Linear{PerItem: 1}, Comp: cost.Linear{PerItem: 2}},
	}
	if got := PlatformClass(linear); got != cost.LinearClass {
		t.Fatalf("class = %v, want linear", got)
	}
	general := []Processor{
		{Name: "g", Comm: cost.Func(func(x int) float64 { return float64(x) }), Comp: cost.Linear{PerItem: 1}},
	}
	if got := PlatformClass(general); got != cost.General {
		t.Fatalf("class = %v, want general", got)
	}
}

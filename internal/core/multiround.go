package core

import (
	"errors"
	"fmt"

	"repro/internal/lp"
)

// This file extends the paper's single-installment scatter to
// multi-installment (multi-round) distributions, the classic divisible
// load theory refinement (Bharadwaj et al., the paper's reference [6]).
// With one installment, processor Pi idles until every earlier
// processor received its whole share — the stair effect. Splitting the
// scatter into R rounds lets far processors start computing on a first
// installment while the rest of their data is still queued behind the
// root's port, shrinking the stair at the cost of more messages.
//
// For affine cost functions the optimal R-round schedule with a fixed
// service order (rounds outer, processors inner, the natural Scatterv
// loop) is a linear program: with share variables n[i][r] >= 0,
//
//	arrive[i][r] = sum of Tcomm over all port slots up to (r, i)
//	T >= arrive[i][r] + Tcomp-slope_i * (remaining work of Pi from round r)
//	     + Tcomp-fixed_i
//	sum n[i][r] = n
//
// because computation on already-delivered data keeps the CPU busy:
// processor i's finish time is governed, for each round r, by the
// arrival of installment r plus the computation of everything it still
// holds from round r on. We solve it exactly in rationals with the
// internal/lp simplex and round with the Section 3.3 scheme.

// MultiRoundResult is an R-round distribution plan.
type MultiRoundResult struct {
	// Shares[r][i] is the number of items sent to processor i in
	// round r; the scatter executes rounds in order, processors in
	// list order within a round.
	Shares [][]int
	// Totals[i] is processor i's total item count.
	Totals Distribution
	// Makespan is the schedule's completion time under the
	// multi-round evaluation (EvaluateMultiRound).
	Makespan float64
}

// MultiRound computes an R-round scatter plan minimizing the makespan
// for affine cost functions. R = 1 reduces to the single-installment
// problem (the heuristic of Section 3.3). Each round's message to a
// processor pays the full affine communication cost, so large R on a
// latency-bound platform backfires — the trade-off the multiround
// experiment quantifies.
func MultiRound(procs []Processor, n, rounds int) (MultiRoundResult, error) {
	if err := ValidateProcessors(procs); err != nil {
		return MultiRoundResult{}, err
	}
	if n < 0 {
		return MultiRoundResult{}, fmt.Errorf("core: negative item count %d", n)
	}
	if rounds < 1 {
		return MultiRoundResult{}, errors.New("core: need at least one round")
	}
	aps, err := ExtractAffine(procs)
	if err != nil {
		return MultiRoundResult{}, err
	}
	p := len(procs)

	// Variables: x[r*p + i] = share of processor i in round r, plus
	// the makespan T at index rounds*p. This LP grows to rounds*p+1
	// variables, where exact rational pivoting becomes prohibitively
	// slow (numerator bit-growth), so it uses the float64 simplex;
	// the subsequent rounding step absorbs the float imprecision.
	nv := rounds*p + 1
	tIdx := rounds * p
	prob := &lp.FloatProblem{NumVars: nv}
	prob.Objective = make([]float64, nv)
	prob.Objective[tIdx] = 1

	// Total-work constraint.
	eq := lp.FloatConstraint{Rel: lp.EQ, RHS: float64(n)}
	eq.Coeffs = make([]float64, nv)
	for v := 0; v < rounds*p; v++ {
		eq.Coeffs[v] = 1
	}
	prob.Constraints = append(prob.Constraints, eq)

	// Finish-time constraints. Port slots run (round 0, proc 0..p-1),
	// (round 1, proc 0..p-1), ... For the slot of (r, i):
	//
	//	arrive = sum over earlier slots (s, j) of
	//	           CommFixed_j + CommPerItem_j * x[s][j]
	//	         + CommFixed_i + CommPerItem_i * x[r][i]
	//	T >= arrive + CompFixed_i
	//	       + CompPerItem_i * sum_{s >= r} x[s][i]
	//
	// As in the single-round LP we charge affine fixed costs
	// unconditionally (the paper's convention); zero-share rounds
	// only over-approximate, so plans stay feasible. The root
	// (assumed last with zero comm cost) contributes no port time.
	for r := 0; r < rounds; r++ {
		for i := 0; i < p; i++ {
			c := lp.FloatConstraint{Rel: lp.LE, Coeffs: make([]float64, nv)}
			fixed := 0.0
			// Earlier slots.
			for s := 0; s <= r; s++ {
				last := p
				if s == r {
					last = i + 1
				}
				for j := 0; j < last; j++ {
					c.Coeffs[s*p+j] += aps[j].CommPerItem
					fixed += aps[j].CommFixed
				}
			}
			// Remaining computation from round r on.
			for s := r; s < rounds; s++ {
				c.Coeffs[s*p+i] += aps[i].CompPerItem
			}
			fixed += aps[i].CompFixed
			c.Coeffs[tIdx] = -1
			c.RHS = -fixed
			prob.Constraints = append(prob.Constraints, c)
		}
	}

	sol, err := lp.SolveFloat(prob)
	if err != nil {
		return MultiRoundResult{}, fmt.Errorf("core: multi-round LP: %w", err)
	}
	if sol.Status != lp.Optimal {
		return MultiRoundResult{}, fmt.Errorf("core: multi-round LP is %v", sol.Status)
	}

	// Round the rounds*p shares jointly with the Section 3.3 scheme
	// (the float adapter rescales them to sum exactly to n first).
	flat := RoundShares(sol.X[:rounds*p], n)
	res := MultiRoundResult{
		Shares: make([][]int, rounds),
		Totals: make(Distribution, p),
	}
	for r := 0; r < rounds; r++ {
		res.Shares[r] = make([]int, p)
		for i := 0; i < p; i++ {
			res.Shares[r][i] = flat[r*p+i]
			res.Totals[i] += flat[r*p+i]
		}
	}
	res.Makespan = EvaluateMultiRound(procs, res.Shares)
	return res, nil
}

// EvaluateMultiRound computes the makespan of executing the given
// round shares under the single-port model: the root walks rounds in
// order and processors in list order within a round; each processor's
// CPU processes its installments back to back as they arrive.
func EvaluateMultiRound(procs []Processor, shares [][]int) float64 {
	p := len(procs)
	port := 0.0
	cpuFree := make([]float64, p) // when each CPU finishes current work
	for _, round := range shares {
		for i := 0; i < p && i < len(round); i++ {
			x := round[i]
			if x == 0 {
				continue
			}
			port += procs[i].Comm.Eval(x)
			start := port
			if cpuFree[i] > start {
				start = cpuFree[i]
			}
			cpuFree[i] = start + procs[i].Comp.Eval(x)
		}
	}
	makespan := 0.0
	for _, f := range cpuFree {
		if f > makespan {
			makespan = f
		}
	}
	return makespan
}

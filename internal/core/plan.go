package core

import (
	"fmt"
	"sync"

	"repro/internal/cost"
)

// This file implements the incremental solver: a Plan retains the full
// per-processor DP rows produced by the Algorithm 2 recurrence, so that
// any suffix subproblem — "distribute d items over processors Pi..Pp" —
// is answered by an O(p) walk of the choice rows instead of a fresh
// O(p·n²) solve.
//
// The key structural fact (Section 3.2 of the paper): row i of the DP
// depends only on the processors at positions i..p-1 and on d. Rows are
// therefore computed from i = p-1 (the root, served last) down to
// i = 0, and a crash of the processor at service position i invalidates
// exactly the rows 0..i — the rows computed last — while rows i+1..p-1
// remain valid verbatim for the surviving suffix. Plan.Resolve exploits
// this: when the survivors share a cost-fingerprint suffix with the
// plan's platform, only the prefix rows are recomputed (none at all
// when the first-served processor is the one that crashed).

// planRow is one retained DP row: cost[d] is the optimal makespan of d
// items on the row's processor suffix, choice[d] the share the suffix's
// first processor takes. The ownership bits keep sync.Pool recycling
// sound when derived plans share rows: a row is returned to the pool
// only by the plan that allocated it (owned) and only if no derived
// plan ever borrowed it (lent — sticky, never cleared).
type planRow struct {
	cost   []float64
	choice []int32
	owned  bool
	lent   bool //scatterlint:guardedby (Engine).mu — sticky borrow bit; engine-less plans never set it
}

// pin marks the row lent so the owner's release() skips its buffers.
// The write is guarded: a row already pinned under the engine mutex
// (Plan.pinRows) is only read here, which keeps the engine's unlocked
// resolve phase free of writes to shared plan state.
func (r *planRow) pin() {
	//scatterlint:ignore lockguard pinRows sets lent under the engine mutex before the unlocked resolve phase; this path only re-reads the sticky bit and skips a redundant store
	if !r.lent {
		r.lent = true
	}
}

// Plan is a retained solution of the Algorithm 2 dynamic program for a
// platform and item count, answering suffix subproblems and warm-started
// re-solves without repeating work. Build one with SolvePlan or through
// an Engine. A Plan is not safe for concurrent use; the Engine
// serializes access to its cached plans.
type Plan struct {
	procs []Processor
	fps   []string // per-processor cost fingerprint; "" if opaque
	n     int      // rows answer any d in [0, n]
	rows  []planRow

	// refs counts in-flight engine resolves reading this plan's rows;
	// zombie marks a plan evicted from the cache while pinned, whose
	// buffers are freed on the last unpin instead. Both are guarded by
	// the engine mutex; they stay zero for engine-less plans.
	refs   int  //scatterlint:guardedby (Engine).mu
	zombie bool //scatterlint:guardedby (Engine).mu
}

// Items returns the item count the plan was solved for; Lookup and
// warm-started Resolve answer any count up to it.
func (pl *Plan) Items() int { return pl.n }

// Size returns the number of processors in the plan's platform.
func (pl *Plan) Size() int { return len(pl.procs) }

// SolvePlan runs the Algorithm 2 dynamic program over increasing cost
// functions and retains every DP row. The distribution reachable via
// Lookup(n, 0) is bit-identical to Algorithm2's: both fill rows with
// the same binary-searched crossover and early-break recurrence.
func SolvePlan(procs []Processor, n int) (*Plan, error) {
	return solvePlan(nil, procs, n, 0)
}

// planParallelThreshold is the item count above which solvePlan fills
// rows with a worker pool; below it the fan-out costs more than the
// row computation.
const planParallelThreshold = 1 << 15

// workers bounds the row pool for large solves; <= 0 selects
// GOMAXPROCS.
func solvePlan(tc *tabCache, procs []Processor, n, workers int) (*Plan, error) {
	if err := validateDPInput(procs, n); err != nil {
		return nil, err
	}
	p := len(procs)
	pl := &Plan{
		procs: append([]Processor(nil), procs...),
		fps:   fingerprints(procs),
		n:     n,
		rows:  make([]planRow, p),
	}

	var rp *rowPool
	if n >= planParallelThreshold && p > 1 {
		rp = newRowPool(workers)
		defer rp.close()
	}

	// Base row: the last processor takes everything that remains.
	comm, comp, done := tc.tables(procs[p-1], pl.fps[p-1], n)
	base := newPlanRow(n)
	for d := 0; d <= n; d++ {
		base.cost[d] = comm[d] + comp[d]
		base.choice[d] = int32(d)
	}
	pl.rows[p-1] = base
	done()

	for i := p - 2; i >= 0; i-- {
		comm, comp, done := tc.tables(procs[i], pl.fps[i], n)
		fillPlanRow(rp, comm, comp, pl.rows[i+1].cost, &pl.rows[i], n)
		done()
	}
	return pl, nil
}

// fillPlanRow allocates row *out and fills it from the next row's costs
// using the exact Algorithm 2 recurrence (rowRange), optionally spread
// over a worker pool. Chunks are disjoint, so the result is
// bit-identical either way.
func fillPlanRow(rp *rowPool, comm, comp, next []float64, out *planRow, n int) {
	row := newPlanRow(n)
	row.cost[0] = comm[0] + maxf(comp[0], next[0])
	row.choice[0] = 0
	if n >= 1 {
		if rp != nil {
			rp.row(comm, comp, next, row.cost, row.choice, n)
		} else {
			rowRange(comm, comp, next, row.cost, row.choice, 1, n)
		}
	}
	*out = row
}

// Lookup answers the suffix subproblem "distribute d items over
// processors i..p-1" by walking the retained choice rows: O(p) time,
// no allocation beyond the returned distribution. The result is
// bit-identical to a fresh Algorithm2 solve on procs[i:] with d items.
func (pl *Plan) Lookup(d, i int) (Result, error) {
	p := len(pl.procs)
	if i < 0 || i >= p {
		return Result{}, fmt.Errorf("core: plan lookup position %d outside [0, %d)", i, p)
	}
	if d < 0 || d > pl.n {
		return Result{}, fmt.Errorf("core: plan lookup item count %d outside [0, %d]", d, pl.n)
	}
	procs := pl.procs[i:]
	dist := make(Distribution, p-i)
	rem := d
	for j := i; j < p; j++ {
		e := int(pl.rows[j].choice[rem])
		dist[j-i] = e
		rem -= e
	}
	return Result{Distribution: dist, Makespan: Makespan(procs, dist)}, nil
}

// Resolve computes an optimal distribution of remaining items over the
// survivors, reusing every DP row the crash left valid. When the
// survivors' cost fingerprints match a suffix of the plan's platform,
// only the prefix rows are recomputed (none when the survivors are a
// pure suffix — the first-served processor crashed); otherwise it falls
// back to a fresh solve. Either way the distribution is bit-identical
// to Algorithm2(survivors, remaining).
func (pl *Plan) Resolve(remaining int, survivors []Processor) (Result, error) {
	d, err := pl.resolve(nil, remaining, survivors, 0)
	if err != nil {
		return Result{}, err
	}
	return d.Lookup(remaining, 0)
}

// pinRows marks every row of the plan as lent, so release() will never
// recycle its buffers. The Engine calls this under its mutex before
// handing the plan to an unlocked resolve: from then on the resolve may
// alias the rows without writing the (now redundant) lent bits itself,
// keeping the unlocked phase free of writes to shared plan state.
func (pl *Plan) pinRows() {
	for i := range pl.rows {
		pl.rows[i].pin()
	}
}

// resolve is Resolve returning the derived plan, so the Engine can
// retain it for future warm starts. tc optionally caches cost tables
// across solves. The plan's rows must not be mutated here beyond the
// pin protocol: when the caller pre-pinned the plan (Engine path), the
// whole body is read-only with respect to pl.
func (pl *Plan) resolve(tc *tabCache, remaining int, survivors []Processor, workers int) (*Plan, error) {
	if err := validateDPInput(survivors, remaining); err != nil {
		return nil, err
	}
	if remaining > pl.n {
		// The retained rows are too narrow; nothing reusable.
		return solvePlan(tc, survivors, remaining, workers)
	}
	p, m := len(pl.procs), len(survivors)
	sfps := fingerprints(survivors)
	// Longest common fingerprint suffix. Opaque functions ("") never
	// match: closures cannot be proven equal, so their rows are never
	// reused.
	t := commonFPSuffix(pl.fps, sfps)
	if t == 0 {
		return solvePlan(tc, survivors, remaining, workers)
	}

	d := &Plan{
		procs: append([]Processor(nil), survivors...),
		fps:   sfps,
		rows:  make([]planRow, m),
	}
	// Borrow the valid suffix rows verbatim; pin them so the owner
	// never recycles them under us.
	for j := 0; j < t; j++ {
		src := &pl.rows[p-t+j]
		src.pin()
		d.rows[m-t+j] = planRow{cost: src.cost, choice: src.choice}
	}
	if t == m {
		// Pure suffix: every row survives at full width. The derived
		// plan inherits the whole warm-start range.
		d.n = pl.n
		return d, nil
	}
	// Partial reuse: recompute the invalidated prefix rows, at the
	// width actually needed now.
	d.n = remaining
	var rp *rowPool
	if remaining >= planParallelThreshold {
		rp = newRowPool(workers)
		defer rp.close()
	}
	for i := m - t - 1; i >= 0; i-- {
		comm, comp, done := tc.tables(survivors[i], sfps[i], remaining)
		fillPlanRow(rp, comm, comp, d.rows[i+1].cost, &d.rows[i], remaining)
		done()
	}
	return d, nil
}

// release returns the plan's owned, never-lent row buffers to the pool.
// Called by the PlanCache on eviction; the plan must not be used after.
// A plan pinned by an in-flight engine resolve is only marked: its
// buffers are freed by the last unpin instead, so the resolve never
// reads recycled memory.
func (pl *Plan) release() {
	//scatterlint:ignore lockguard the engine evicts under its mutex; engine-less caches never pin, so refs and zombie stay zero on the unlocked path
	if pl.refs > 0 {
		pl.zombie = true
		return
	}
	pl.freeRows()
}

// freeRows recycles the owned, never-lent row buffers and nils every
// row. Callers must guarantee no reader is left (release, or the last
// engine unpin of a zombie).
func (pl *Plan) freeRows() {
	for i := range pl.rows {
		r := &pl.rows[i]
		//scatterlint:ignore lockguard callers guarantee no reader is left: eviction under the engine mutex, or the last unpin of a zombie
		if r.owned && !r.lent {
			putF64(r.cost)
			putI32(r.choice)
		}
		r.cost, r.choice = nil, nil
	}
}

// fingerprints computes the per-processor cost fingerprint used for
// suffix matching and cache keys: comm and comp fingerprints joined, or
// "" when either function is opaque.
func fingerprints(procs []Processor) []string {
	fps := make([]string, len(procs))
	for i, pr := range procs {
		cm, ok1 := cost.Fingerprint(pr.Comm)
		cp, ok2 := cost.Fingerprint(pr.Comp)
		if ok1 && ok2 {
			fps[i] = cm + "|" + cp
		}
	}
	return fps
}

// newPlanRow takes a row's buffers from the pools.
func newPlanRow(n int) planRow {
	return planRow{cost: getF64(n + 1), choice: getI32(n + 1), owned: true}
}

// Buffer pools for the O(p·n) row and table scratch, so steady-state
// re-solves allocate ~nothing.
var (
	f64Pool = sync.Pool{}
	i32Pool = sync.Pool{}
)

// getF64 returns a slice of length n whose entries are NOT zeroed;
// every caller overwrites the full range it reads.
func getF64(n int) []float64 {
	if v := f64Pool.Get(); v != nil {
		if s := v.([]float64); cap(s) >= n {
			return s[:n]
		}
	}
	return make([]float64, n)
}

func putF64(s []float64) {
	if cap(s) > 0 {
		f64Pool.Put(s[:0])
	}
}

func getI32(n int) []int32 {
	if v := i32Pool.Get(); v != nil {
		if s := v.([]int32); cap(s) >= n {
			return s[:n]
		}
	}
	return make([]int32, n)
}

func putI32(s []int32) {
	if cap(s) > 0 {
		i32Pool.Put(s[:0])
	}
}

// tabCache memoizes the comm/comp cost tables per fingerprint, so
// repeated solves on the same platform skip re-tabulation entirely. A
// nil *tabCache (the zero engine-less path) degrades to pooled scratch
// tables filled per call. Safe for concurrent use: published tables
// are immutable, and the mutex guards only map access — concurrent
// solves of distinct platforms tabulate in parallel.
type tabCache struct {
	mu   sync.Mutex
	tabs map[string][]float64 //scatterlint:guardedby mu — values are immutable once published
}

func newTabCache() *tabCache {
	return &tabCache{tabs: make(map[string][]float64)}
}

// tables returns comm and comp tables covering [0, n] for pr. The done
// function must be called when the caller is finished with the slices;
// it recycles pooled scratch (cached tables are retained and done is a
// no-op for them).
func (tc *tabCache) tables(pr Processor, fp string, n int) (comm, comp []float64, done func()) {
	if tc == nil || fp == "" {
		comm, comp = getF64(n+1), getF64(n+1)
		tabulate(pr, n, comm, comp)
		return comm, comp, func() { putF64(comm); putF64(comp) }
	}
	comm = tc.table(pr.Comm, "m|"+fp, n)
	comp = tc.table(pr.Comp, "p|"+fp, n)
	return comm, comp, func() {}
}

func (tc *tabCache) table(f cost.Function, key string, n int) []float64 {
	tc.mu.Lock()
	tab, ok := tc.tabs[key]
	tc.mu.Unlock()
	if ok && len(tab) >= n+1 {
		return tab[:n+1]
	}
	// Tabulate outside the lock so distinct platforms fill in
	// parallel; concurrent fills of one key duplicate O(n) work at
	// worst, and the widest table wins the publish.
	tab = make([]float64, n+1)
	fillCosts(f, n, tab)
	tc.mu.Lock()
	if cur, ok := tc.tabs[key]; ok && len(cur) >= len(tab) {
		tab = cur
	} else {
		tc.tabs[key] = tab
	}
	tc.mu.Unlock()
	return tab[:n+1]
}

package core

import (
	"math/rand"
	"testing"

	"repro/internal/cost"
)

// This file pins down structural invariants of the optimization
// problem itself — properties any correct solver must satisfy across
// instances, independent of which specific distribution it picks.

// TestMakespanMonotoneInN: more items can never finish earlier.
func TestMakespanMonotoneInN(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 10; trial++ {
		p := 1 + rng.Intn(5)
		procs := randomLinearProcs(rng, p)
		prev := -1.0
		for _, n := range []int{0, 1, 5, 20, 50, 120} {
			res, err := Algorithm2(procs, n)
			if err != nil {
				t.Fatal(err)
			}
			if res.Makespan < prev-1e-12 {
				t.Fatalf("trial %d: makespan decreased from %g to %g at n=%d",
					trial, prev, res.Makespan, n)
			}
			prev = res.Makespan
		}
	}
}

// TestExtraProcessorNeverHurts: appending a processor before the root
// cannot increase the optimal makespan (the solver can always give the
// newcomer zero items, recovering the old schedule exactly — a zero
// share costs zero port time under null-at-zero cost functions).
func TestExtraProcessorNeverHurts(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	for trial := 0; trial < 15; trial++ {
		p := 1 + rng.Intn(4)
		procs := randomLinearProcs(rng, p)
		n := 10 + rng.Intn(60)
		base, err := Algorithm2(procs, n)
		if err != nil {
			t.Fatal(err)
		}
		extra := Processor{
			Name: "extra",
			Comm: cost.Linear{PerItem: float64(rng.Intn(8)) * 0.25},
			Comp: cost.Linear{PerItem: float64(1+rng.Intn(8)) * 0.25},
		}
		// Insert before the root (which must stay last).
		bigger := append(append([]Processor(nil), procs[:p-1]...), extra, procs[p-1])
		grown, err := Algorithm2(bigger, n)
		if err != nil {
			t.Fatal(err)
		}
		if grown.Makespan > base.Makespan+1e-9 {
			t.Errorf("trial %d: extra processor increased the optimum: %g -> %g",
				trial, base.Makespan, grown.Makespan)
		}
	}
}

// TestFasterProcessorNeverHurts: speeding up one processor's CPU can
// only help the optimum (the old distribution stays feasible with a
// pointwise smaller finish for that processor and unchanged others).
func TestFasterProcessorNeverHurts(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 15; trial++ {
		p := 2 + rng.Intn(4)
		procs := randomLinearProcs(rng, p)
		n := 10 + rng.Intn(60)
		base, err := Algorithm2(procs, n)
		if err != nil {
			t.Fatal(err)
		}
		faster := append([]Processor(nil), procs...)
		which := rng.Intn(p)
		lp, err := ExtractLinear([]Processor{procs[which]})
		if err != nil {
			t.Fatal(err)
		}
		lp[0].Beta /= 2
		faster[which] = lp[0].Processor()
		improved, err := Algorithm2(faster, n)
		if err != nil {
			t.Fatal(err)
		}
		if improved.Makespan > base.Makespan+1e-9 {
			t.Errorf("trial %d: halving processor %d's beta worsened the optimum: %g -> %g",
				trial, which, base.Makespan, improved.Makespan)
		}
	}
}

// TestSuperadditivity: solving n1+n2 items jointly can never be worse
// than twice solving the halves back-to-back (the concatenated
// schedules are one feasible—but wasteful—way to do the whole job).
func TestSuperadditivity(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	for trial := 0; trial < 10; trial++ {
		p := 1 + rng.Intn(4)
		procs := randomLinearProcs(rng, p)
		n1, n2 := 5+rng.Intn(30), 5+rng.Intn(30)
		whole, err := Algorithm2(procs, n1+n2)
		if err != nil {
			t.Fatal(err)
		}
		a, err := Algorithm2(procs, n1)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Algorithm2(procs, n2)
		if err != nil {
			t.Fatal(err)
		}
		if whole.Makespan > a.Makespan+b.Makespan+1e-9 {
			t.Errorf("trial %d: T(%d+%d)=%g exceeds T(%d)+T(%d)=%g",
				trial, n1, n2, whole.Makespan, n1, n2, a.Makespan+b.Makespan)
		}
	}
}

// TestUniformNeverBeatsOptimal: by definition of optimality.
func TestUniformNeverBeatsOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 20; trial++ {
		p := 1 + rng.Intn(6)
		procs := randomAffineProcs(rng, p)
		n := rng.Intn(100)
		opt, err := Algorithm2(procs, n)
		if err != nil {
			t.Fatal(err)
		}
		if uni := Makespan(procs, Uniform(p, n)); uni < opt.Makespan-1e-9 {
			t.Errorf("trial %d: uniform %g beats 'optimal' %g", trial, uni, opt.Makespan)
		}
	}
}

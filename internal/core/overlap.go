package core

import (
	"errors"
	"fmt"
)

// This file implements the communication/computation-overlap variant
// of the linear closed form. The paper's framework deliberately keeps
// the original program's structure — the root "can only start to
// process its share of the data items after it has sent the other data
// items to the other processors" — whereas the master/worker
// literature it cites (Beaumont, Legrand, Robert) lets the master
// compute while its port streams data out. SolveLinearRootOverlap
// solves that relaxed model so the cost of the paper's structural
// restriction can be measured (see the ablation benchmarks).

// SolveLinearRootOverlap computes the optimal rational distribution
// for linear cost functions when the root (the last processor) may
// compute concurrently with its sends. Workers behave exactly as in
// Theorem 1; the root's finish time becomes beta_p * n_p, independent
// of the communication chain, so the simultaneous-endings system gains
// the root term 1/beta_p without the usual product prefix:
//
//	t = n / ( sum_{i<p} 1/(a_i+b_i) * prod_{j<i} b_j/(a_j+b_j)  +  1/b_p )
//
// Worker pruning follows the Theorem 2 criterion against the
// overlap-aware suffix quantity.
func SolveLinearRootOverlap(lps []LinearProcessor, n int) (LinearSolution, error) {
	p := len(lps)
	if p == 0 {
		return LinearSolution{}, errors.New("core: no processors")
	}
	if n < 0 {
		return LinearSolution{}, fmt.Errorf("core: negative item count %d", n)
	}
	for i, lp := range lps {
		if lp.Alpha < 0 || lp.Beta < 0 {
			return LinearSolution{}, fmt.Errorf("core: processor %d (%s) has negative cost constants", i, lp.Name)
		}
	}

	sol := LinearSolution{
		Shares: make([]float64, p),
		Kept:   make([]bool, p),
	}
	root := lps[p-1]
	sol.Kept[p-1] = true

	if root.Beta == 0 {
		// An infinitely fast overlapping root absorbs everything.
		sol.Shares[p-1] = float64(n)
		return sol, nil
	}

	// overlapD computes 1/S for a worker chain (ordered) plus the
	// overlapping root.
	overlapD := func(workers []LinearProcessor) float64 {
		sum := 1 / root.Beta
		prod := 1.0
		for _, w := range workers {
			ab := w.Alpha + w.Beta
			if ab == 0 {
				return 0 // infinitely fast worker
			}
			sum += prod / ab
			prod *= w.Beta / ab
		}
		return 1 / sum
	}

	// Prune workers back to front with the Theorem 2 criterion
	// against the overlap-aware suffix.
	kept := []LinearProcessor{}
	for i := p - 2; i >= 0; i-- {
		d := overlapD(kept)
		if lps[i].Alpha <= d {
			sol.Kept[i] = true
			kept = append([]LinearProcessor{lps[i]}, kept...)
		}
	}

	d := overlapD(kept)
	if d == 0 {
		// An infinitely fast kept worker takes everything.
		for i := 0; i < p-1; i++ {
			if sol.Kept[i] && lps[i].Alpha+lps[i].Beta == 0 {
				sol.Shares[i] = float64(n)
				return sol, nil
			}
		}
		return sol, nil
	}
	t := float64(n) * d
	sol.Makespan = t
	prod := 1.0
	for i := 0; i < p-1; i++ {
		if !sol.Kept[i] {
			continue
		}
		ab := lps[i].Alpha + lps[i].Beta
		sol.Shares[i] = prod / ab * t
		prod *= lps[i].Beta / ab
	}
	sol.Shares[p-1] = t / root.Beta
	return sol, nil
}

// OverlapGain returns the relative makespan improvement the
// root-overlap relaxation buys over the paper's no-overlap model on
// the same processors: (t_noOverlap - t_overlap) / t_noOverlap.
func OverlapGain(lps []LinearProcessor, n int) (float64, error) {
	plain, err := SolveLinearRational(lps, n)
	if err != nil {
		return 0, err
	}
	over, err := SolveLinearRootOverlap(lps, n)
	if err != nil {
		return 0, err
	}
	if plain.Makespan == 0 {
		return 0, nil
	}
	return (plain.Makespan - over.Makespan) / plain.Makespan, nil
}

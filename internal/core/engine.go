package core

import (
	"container/list"
	"strings"
	"sync"

	"repro/internal/cost"
)

// PlatformClass returns the weakest analytic class among all cost
// functions of procs: the class that decides which solver is safe for
// the platform. It is the single dispatch rule shared by the Engine,
// the mpi runtime and the chaos harness.
func PlatformClass(procs []Processor) cost.Class {
	class := cost.LinearClass
	for _, p := range procs {
		for _, f := range []cost.Function{p.Comm, p.Comp} {
			if c := cost.ClassOf(f); c < class {
				class = c
			}
		}
	}
	return class
}

// EngineStats counts how the Engine satisfied its solves.
type EngineStats struct {
	// ColdSolves is the number of from-scratch plan builds.
	ColdSolves int
	// Resolves is the number of warm starts: a cached plan's rows were
	// partially or fully reused for a different platform or item count.
	Resolves int
	// CacheHits is the number of solves answered entirely from a cached
	// plan (O(p) reconstruction, no DP work).
	CacheHits int
	// Fallbacks is the number of solves routed to the non-incremental
	// solvers: general-class platforms (Algorithm 1) or opaque cost
	// functions that cannot be fingerprinted (fresh Algorithm 2).
	Fallbacks int
}

// Engine is the incremental solver: it answers distribution requests
// from a bounded cache of retained plans, warm-starting from the plan
// with the longest matching platform suffix and falling back to a cold
// solve only when nothing is reusable. All results are bit-identical to
// the fresh class-dispatched solvers (Algorithm 1 for general
// platforms, Algorithm 2 otherwise). Safe for concurrent use.
type Engine struct {
	mu    sync.Mutex
	cache *PlanCache
	tabs  *tabCache
	stats EngineStats
}

// DefaultPlanCacheCapacity bounds an Engine's plan cache when
// NewEngine is given a non-positive capacity. Rebalance sequences
// shrink one platform signature at a time, so a handful of retained
// plans covers a whole crash cascade.
const DefaultPlanCacheCapacity = 8

// NewEngine returns an Engine whose cache holds up to capacity plans
// (DefaultPlanCacheCapacity when capacity <= 0).
func NewEngine(capacity int) *Engine {
	if capacity <= 0 {
		capacity = DefaultPlanCacheCapacity
	}
	return &Engine{cache: NewPlanCache(capacity), tabs: newTabCache()}
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() EngineStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Solve computes an optimal distribution of n items over procs (service
// order, root last), reusing retained DP state whenever it provably
// cannot change the result: an exact platform-signature hit answers in
// O(p); otherwise the cached plan sharing the longest cost-fingerprint
// suffix is warm-started via Plan.resolve; otherwise a cold plan is
// built and retained. General-class platforms and opaque cost functions
// bypass the plan machinery entirely.
func (e *Engine) Solve(procs []Processor, n int) (Result, error) {
	if PlatformClass(procs) == cost.General {
		e.count(func(s *EngineStats) { s.Fallbacks++ })
		return Algorithm1(procs, n)
	}
	fps := fingerprints(procs)
	for _, fp := range fps {
		if fp == "" {
			e.count(func(s *EngineStats) { s.Fallbacks++ })
			return Algorithm2(procs, n)
		}
	}
	sig := strings.Join(fps, ";")

	e.mu.Lock()
	defer e.mu.Unlock()

	if pl := e.cache.Get(sig); pl != nil && pl.n >= n {
		e.stats.CacheHits++
		return pl.Lookup(n, 0)
	}
	if base := e.cache.bestSuffix(fps, n); base != nil {
		derived, err := base.resolve(e.tabs, n, procs)
		if err == nil {
			e.stats.Resolves++
			e.cache.Put(sig, derived)
			return derived.Lookup(n, 0)
		}
	}
	pl, err := solvePlan(e.tabs, procs, n)
	if err != nil {
		return Result{}, err
	}
	e.stats.ColdSolves++
	e.cache.Put(sig, pl)
	return pl.Lookup(n, 0)
}

func (e *Engine) count(f func(*EngineStats)) {
	e.mu.Lock()
	f(&e.stats)
	e.mu.Unlock()
}

// PlanCache is a bounded LRU cache of retained plans keyed by the
// canonical platform signature (the joined per-processor cost
// fingerprints). Recency is tracked structurally — a move-to-front
// list — so the cache needs no clock, which keeps it usable inside the
// simulated-time runtime. Not safe for concurrent use; the Engine
// serializes access.
type PlanCache struct {
	capacity int
	ll       *list.List // front = most recently used; element values are *cacheEntry
	byKey    map[string]*list.Element
}

type cacheEntry struct {
	key  string
	plan *Plan
}

// NewPlanCache returns a cache holding up to capacity plans (minimum 1).
func NewPlanCache(capacity int) *PlanCache {
	if capacity < 1 {
		capacity = 1
	}
	return &PlanCache{capacity: capacity, ll: list.New(), byKey: make(map[string]*list.Element)}
}

// Len returns the number of cached plans.
func (c *PlanCache) Len() int { return c.ll.Len() }

// Get returns the plan cached under sig, bumping its recency, or nil.
func (c *PlanCache) Get(sig string) *Plan {
	el, ok := c.byKey[sig]
	if !ok {
		return nil
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).plan
}

// Put caches pl under sig as the most recent entry, evicting the least
// recently used plan if the cache is full. Evicted (or replaced) plans
// have their row buffers recycled; rows borrowed by a still-cached
// derived plan are left alone (see planRow.lent).
func (c *PlanCache) Put(sig string, pl *Plan) {
	if el, ok := c.byKey[sig]; ok {
		ent := el.Value.(*cacheEntry)
		if ent.plan != pl {
			ent.plan.release()
			ent.plan = pl
		}
		c.ll.MoveToFront(el)
		return
	}
	c.byKey[sig] = c.ll.PushFront(&cacheEntry{key: sig, plan: pl})
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		ent := oldest.Value.(*cacheEntry)
		c.ll.Remove(oldest)
		delete(c.byKey, ent.key)
		ent.plan.release()
	}
}

// bestSuffix returns the cached plan sharing the longest non-empty
// cost-fingerprint suffix with fps, restricted to plans wide enough to
// answer n items (resolve reuses suffix rows verbatim, so they must
// cover the requested width). Ties go to the more recently used plan.
func (c *PlanCache) bestSuffix(fps []string, n int) *Plan {
	var best *Plan
	bestT := 0
	for el := c.ll.Front(); el != nil; el = el.Next() {
		pl := el.Value.(*cacheEntry).plan
		if pl.n < n {
			continue
		}
		t := commonFPSuffix(pl.fps, fps)
		if t > bestT {
			best, bestT = pl, t
		}
	}
	return best
}

// commonFPSuffix counts matching trailing fingerprints, stopping at
// opaque ("") entries.
func commonFPSuffix(a, b []string) int {
	t := 0
	for t < len(a) && t < len(b) {
		fp := b[len(b)-1-t]
		if fp == "" || fp != a[len(a)-1-t] {
			break
		}
		t++
	}
	return t
}

package core

import (
	"container/list"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"repro/internal/cost"
)

// PlatformClass returns the weakest analytic class among all cost
// functions of procs: the class that decides which solver is safe for
// the platform. It is the single dispatch rule shared by the Engine,
// the mpi runtime and the chaos harness.
func PlatformClass(procs []Processor) cost.Class {
	class := cost.LinearClass
	for _, p := range procs {
		for _, f := range []cost.Function{p.Comm, p.Comp} {
			if c := cost.ClassOf(f); c < class {
				class = c
			}
		}
	}
	return class
}

// EngineStats counts how the Engine satisfied its solves.
type EngineStats struct {
	// ColdSolves is the number of from-scratch plan builds.
	ColdSolves int
	// Resolves is the number of warm starts: a cached plan's rows were
	// partially or fully reused for a different platform or item count.
	Resolves int
	// CacheHits is the number of solves answered entirely from a cached
	// plan (O(p) reconstruction, no DP work) or a cached coarse result.
	CacheHits int
	// Fallbacks is the number of solves routed to the non-incremental
	// solvers: general-class platforms (Algorithm 1) or opaque cost
	// functions that cannot be fingerprinted (fresh Algorithm 2).
	Fallbacks int
	// Coalesced is the number of solves answered by waiting on an
	// identical in-flight solve (same signature and item count) instead
	// of starting their own DP — the singleflight waiters.
	Coalesced int
	// CoarseSolves is the number of solves answered by the
	// coarsen-then-refine solver under a coarse policy.
	CoarseSolves int
}

// SolvePolicy selects how an Engine answers solves that miss every
// cache: exactly, or with the coarsen-then-refine solver and a
// machine-checked optimality band.
type SolvePolicy int

const (
	// PolicyExact always runs the exact DP. The zero value, and the
	// only policy whose plans are retained for warm starts.
	PolicyExact SolvePolicy = iota
	// PolicyCoarseRefine answers large cold solves with the coarse DP
	// plus banded exact refinement (SolveCoarse).
	PolicyCoarseRefine
	// PolicyCoarseOnly answers large cold solves with the grid-optimal
	// distribution alone — fastest, widest band.
	PolicyCoarseOnly
)

// String names the policy for flags, reports and the daemon's JSON.
func (p SolvePolicy) String() string {
	switch p {
	case PolicyExact:
		return "exact"
	case PolicyCoarseRefine:
		return "coarse-refine"
	case PolicyCoarseOnly:
		return "coarse-only"
	default:
		return "policy(" + strconv.Itoa(int(p)) + ")"
	}
}

// ParsePolicy parses the String form of a SolvePolicy.
func ParsePolicy(s string) (SolvePolicy, error) {
	switch s {
	case "exact":
		return PolicyExact, nil
	case "coarse-refine":
		return PolicyCoarseRefine, nil
	case "coarse-only":
		return PolicyCoarseOnly, nil
	}
	return 0, fmt.Errorf("core: unknown solve policy %q (want exact, coarse-refine or coarse-only)", s)
}

// SolveSource classifies the path a Solve took through the engine.
type SolveSource int

const (
	// SourceCold is a from-scratch plan build.
	SourceCold SolveSource = iota
	// SourceResolve is a warm start from a cached plan's suffix rows.
	SourceResolve
	// SourceCacheHit is an O(p) answer from a retained plan.
	SourceCacheHit
	// SourceFallback is a non-incremental solve: a general-class
	// platform (Algorithm 1) or an unfingerprintable cost function
	// (fresh Algorithm 2).
	SourceFallback
	// SourceCoarse is a coarsen-then-refine solve under a coarse
	// policy, carrying an optimality band instead of exactness.
	SourceCoarse
)

// String names the source for reports and the daemon's JSON responses.
func (s SolveSource) String() string {
	switch s {
	case SourceCold:
		return "cold"
	case SourceResolve:
		return "warm"
	case SourceCacheHit:
		return "cache"
	case SourceFallback:
		return "fallback"
	case SourceCoarse:
		return "coarse"
	default:
		return "source(" + strconv.Itoa(int(s)) + ")"
	}
}

// SolveInfo describes how a solve was satisfied.
type SolveInfo struct {
	// Source is the path the answering solve took. For a coalesced
	// caller it is the leader's path.
	Source SolveSource
	// Coalesced reports that this caller did no DP work of its own: it
	// waited on an identical in-flight solve and shared its result.
	Coalesced bool
	// Signature is the canonical platform signature, or "" when the
	// platform cannot be fingerprinted (opaque or general-class costs).
	Signature string
	// Policy is the solve policy that produced the result. Exact
	// sources — including coarse-policy solves small enough to fall
	// back to the exact DP — report PolicyExact.
	Policy SolvePolicy
	// Granularity is the grid step of a coarse solve; 0 for exact.
	Granularity int
	// Bound is the realized optimality band: the makespan exceeds the
	// optimum by at most Bound. Exact solves report 0.
	Bound float64
	// LowerBound is the proven lower bound on the optimal makespan
	// backing Bound; 0 for exact solves (where the makespan itself is
	// the optimum).
	LowerBound float64
}

// PlatformSignature returns the canonical cost signature of procs — the
// per-processor comm|comp fingerprints joined with ";" — and whether
// one exists. Two platforms with equal signatures solve bit-identically
// at every item count, so the signature is a safe key for plan caches
// and the daemon's durable plan store. General-class platforms and
// platforms containing an opaque cost function have no signature.
func PlatformSignature(procs []Processor) (string, bool) {
	if PlatformClass(procs) == cost.General {
		return "", false
	}
	fps := fingerprints(procs)
	for _, fp := range fps {
		if fp == "" {
			return "", false
		}
	}
	return strings.Join(fps, ";"), true
}

// Engine is the incremental solver: it answers distribution requests
// from a bounded cache of retained plans, warm-starting from the plan
// with the longest matching platform suffix and falling back to a cold
// solve only when nothing is reusable. All results are bit-identical to
// the fresh class-dispatched solvers (Algorithm 1 for general
// platforms, Algorithm 2 otherwise). Safe for concurrent use: the
// engine mutex guards only cache bookkeeping and counters, never a DP
// solve, so distinct platform signatures solve in parallel while
// identical in-flight requests coalesce onto one solve (singleflight).
type Engine struct {
	mu      sync.Mutex
	cache   *PlanCache         //scatterlint:guardedby mu
	tabs    *tabCache          //scatterlint:guardedby immutable — set once in the constructor; internally synchronized
	stats   EngineStats        //scatterlint:guardedby mu
	flights map[string]*flight //scatterlint:guardedby mu

	workers   int         //scatterlint:guardedby immutable
	policy    SolvePolicy //scatterlint:guardedby immutable
	gran      int         //scatterlint:guardedby immutable
	coarseMin int         //scatterlint:guardedby immutable

	// coarseCache memoizes coarse results by solve key. Coarse answers
	// never enter the plan cache (their rows are not exact DP rows), so
	// they get their own small FIFO-evicted table; entries are tiny — a
	// distribution plus the band.
	coarseCache map[string]CoarseResult //scatterlint:guardedby mu
	coarseOrder []string                //scatterlint:guardedby mu
	coarseCap   int                     //scatterlint:guardedby immutable
}

// flight is one in-progress solve that identical requests wait on. Its
// result fields are written exactly once, before done is closed.
type flight struct {
	done chan struct{} //scatterlint:guardedby immutable
	res  Result        //scatterlint:guardedby immutable — written under e.mu before close(done)
	info SolveInfo     //scatterlint:guardedby immutable — written under e.mu before close(done)
	err  error         //scatterlint:guardedby immutable — written under e.mu before close(done)
}

// DefaultPlanCacheCapacity bounds an Engine's plan cache when
// NewEngine is given a non-positive capacity. Rebalance sequences
// shrink one platform signature at a time, so a handful of retained
// plans covers a whole crash cascade.
const DefaultPlanCacheCapacity = 8

// DefaultGranularity is the coarse grid step used when EngineConfig
// leaves Granularity unset. At the paper's 817k-item scale it puts the
// coarsen-then-refine solve around 100x under the exact cold solve
// while keeping the realized band under ~1% of the makespan.
const DefaultGranularity = 1024

// DefaultCoarseMinItems is the item count below which coarse policies
// still solve exactly: under it the exact DP costs about as little as
// the refinement window itself, so approximating buys nothing.
const DefaultCoarseMinItems = 1 << 17

// EngineConfig tunes an Engine beyond the plan-cache capacity.
type EngineConfig struct {
	// Capacity bounds the plan cache (DefaultPlanCacheCapacity when
	// <= 0).
	Capacity int
	// Workers bounds the DP row pool used by large cold and warm
	// solves; <= 0 selects GOMAXPROCS.
	Workers int
	// Policy selects exact or coarse solving for cache-missing solves.
	Policy SolvePolicy
	// Granularity is the coarse grid step (DefaultGranularity when
	// <= 0). Ignored under PolicyExact.
	Granularity int
	// CoarseMinItems is the item count under which coarse policies
	// fall back to the exact DP (DefaultCoarseMinItems when <= 0).
	CoarseMinItems int
}

// NewEngine returns an Engine whose cache holds up to capacity plans
// (DefaultPlanCacheCapacity when capacity <= 0), solving exactly.
func NewEngine(capacity int) *Engine {
	return NewEngineConfig(EngineConfig{Capacity: capacity})
}

// NewEngineConfig returns an Engine with explicit solve policy and
// worker configuration.
func NewEngineConfig(cfg EngineConfig) *Engine {
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultPlanCacheCapacity
	}
	if cfg.Granularity <= 0 {
		cfg.Granularity = DefaultGranularity
	}
	if cfg.CoarseMinItems <= 0 {
		cfg.CoarseMinItems = DefaultCoarseMinItems
	}
	return &Engine{
		cache:       NewPlanCache(cfg.Capacity),
		tabs:        newTabCache(),
		flights:     make(map[string]*flight),
		workers:     cfg.Workers,
		policy:      cfg.Policy,
		gran:        cfg.Granularity,
		coarseMin:   cfg.CoarseMinItems,
		coarseCache: make(map[string]CoarseResult),
		coarseCap:   4 * cfg.Capacity,
	}
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() EngineStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Solve computes an optimal distribution of n items over procs (service
// order, root last), reusing retained DP state whenever it provably
// cannot change the result: an exact platform-signature hit answers in
// O(p); otherwise the cached plan sharing the longest cost-fingerprint
// suffix is warm-started via Plan.resolve; otherwise a cold plan is
// built and retained. General-class platforms and opaque cost functions
// bypass the plan machinery entirely.
func (e *Engine) Solve(procs []Processor, n int) (Result, error) {
	res, _, err := e.SolveDetailed(procs, n)
	return res, err
}

// SolveDetailed is Solve, additionally reporting how the answer was
// produced. The engine mutex is held only for cache bookkeeping: the
// DP itself runs unlocked, so concurrent solves of distinct signatures
// proceed in parallel, while callers requesting an identical
// (signature, item count) pair wait on the in-flight leader and share
// its result bit-for-bit.
func (e *Engine) SolveDetailed(procs []Processor, n int) (Result, SolveInfo, error) {
	if PlatformClass(procs) == cost.General {
		e.count(func(s *EngineStats) { s.Fallbacks++ })
		res, err := Algorithm1(procs, n)
		return res, SolveInfo{Source: SourceFallback}, err
	}
	fps := fingerprints(procs)
	for _, fp := range fps {
		if fp == "" {
			e.count(func(s *EngineStats) { s.Fallbacks++ })
			res, err := Algorithm2(procs, n)
			return res, SolveInfo{Source: SourceFallback}, err
		}
	}
	sig := strings.Join(fps, ";")
	if e.policy != PolicyExact && n >= e.coarseMin {
		return e.solveCoarseDetailed(procs, n, sig)
	}
	key := sig + "#" + strconv.Itoa(n)

	e.mu.Lock()
	if pl := e.cache.Get(sig); pl != nil && pl.n >= n {
		e.stats.CacheHits++
		res, err := pl.Lookup(n, 0)
		e.mu.Unlock()
		return res, SolveInfo{Source: SourceCacheHit, Signature: sig}, err
	}
	if f, ok := e.flights[key]; ok {
		// An identical solve is in flight: wait for the leader instead
		// of duplicating a multi-second DP. Identical inputs fail
		// identically, so sharing the leader's error is exact too.
		e.stats.Coalesced++
		e.mu.Unlock()
		<-f.done
		info := f.info
		info.Coalesced = true
		return f.res, info, f.err
	}
	// Leader: register the flight and pick the warm-start base under
	// the lock, pinning it so a concurrent eviction cannot recycle its
	// row buffers while the resolve reads them.
	f := &flight{done: make(chan struct{})}
	e.flights[key] = f
	base := e.cache.bestSuffix(fps, n)
	if base != nil {
		base.refs++
		base.pinRows()
	}
	e.mu.Unlock()

	var pl *Plan
	var err error
	source := SourceCold
	if base != nil {
		if derived, rerr := base.resolve(e.tabs, n, procs, e.workers); rerr == nil {
			pl, source = derived, SourceResolve
		}
	}
	if pl == nil {
		pl, err = solvePlan(e.tabs, procs, n, e.workers)
	}

	e.mu.Lock()
	if base != nil {
		e.unpinLocked(base)
	}
	var res Result
	if err == nil {
		if source == SourceResolve {
			e.stats.Resolves++
		} else {
			e.stats.ColdSolves++
		}
		e.cache.Put(sig, pl)
		res, err = pl.Lookup(n, 0)
	}
	f.res, f.info, f.err = res, SolveInfo{Source: source, Signature: sig}, err
	delete(e.flights, key)
	e.mu.Unlock()
	close(f.done)
	return f.res, f.info, f.err
}

// solveCoarseDetailed answers a large solve under a coarse policy.
// Coarse results never enter the plan cache — its rows must stay exact
// for warm starts and suffix lookups — so they are memoized in a side
// table keyed by signature, item count, granularity and policy, and
// identical in-flight coarse solves coalesce like exact ones.
func (e *Engine) solveCoarseDetailed(procs []Processor, n int, sig string) (Result, SolveInfo, error) {
	key := sig + "#" + strconv.Itoa(n) + "#g" + strconv.Itoa(e.gran) + "#" + e.policy.String()
	e.mu.Lock()
	if cr, ok := e.coarseCache[key]; ok {
		e.stats.CacheHits++
		e.mu.Unlock()
		return cr.Result, e.coarseInfo(cr, sig, SourceCacheHit), nil
	}
	if f, ok := e.flights[key]; ok {
		e.stats.Coalesced++
		e.mu.Unlock()
		<-f.done
		info := f.info
		info.Coalesced = true
		return f.res, info, f.err
	}
	f := &flight{done: make(chan struct{})}
	e.flights[key] = f
	e.mu.Unlock()

	cr, err := solveCoarse(e.tabs, procs, n, e.gran, CoarseOptions{SkipRefine: e.policy == PolicyCoarseOnly})

	e.mu.Lock()
	var info SolveInfo
	if err == nil {
		e.stats.CoarseSolves++
		e.coarsePutLocked(key, cr)
		info = e.coarseInfo(cr, sig, SourceCoarse)
	}
	f.res, f.info, f.err = cr.Result, info, err
	delete(e.flights, key)
	e.mu.Unlock()
	close(f.done)
	return f.res, f.info, f.err
}

// coarseInfo translates a CoarseResult into the SolveInfo reported to
// callers. A coarse solve that fell back to the exact DP reports
// PolicyExact with a zero band, so consumers gating on exactness (like
// the daemon's durable store) see the truth rather than the knob.
func (e *Engine) coarseInfo(cr CoarseResult, sig string, src SolveSource) SolveInfo {
	info := SolveInfo{Source: src, Signature: sig}
	if cr.Exact {
		info.Policy = PolicyExact
		return info
	}
	info.Policy = e.policy
	info.Granularity = cr.Granularity
	info.Bound = cr.Band
	info.LowerBound = cr.LowerBound
	return info
}

// coarsePutLocked memoizes a coarse result, evicting in FIFO order
// once over capacity. Callers must hold e.mu.
func (e *Engine) coarsePutLocked(key string, cr CoarseResult) {
	if _, ok := e.coarseCache[key]; !ok {
		e.coarseOrder = append(e.coarseOrder, key)
		for len(e.coarseOrder) > e.coarseCap {
			evict := e.coarseOrder[0]
			e.coarseOrder = e.coarseOrder[1:]
			delete(e.coarseCache, evict)
		}
	}
	e.coarseCache[key] = cr
}

// unpinLocked drops one pin from a plan used as a warm-start base,
// freeing its rows if the cache evicted it while the resolve ran.
// Callers must hold e.mu.
func (e *Engine) unpinLocked(pl *Plan) {
	pl.refs--
	if pl.refs == 0 && pl.zombie {
		pl.freeRows()
	}
}

func (e *Engine) count(f func(*EngineStats)) {
	e.mu.Lock()
	f(&e.stats)
	e.mu.Unlock()
}

// PlanCache is a bounded LRU cache of retained plans keyed by the
// canonical platform signature (the joined per-processor cost
// fingerprints). Recency is tracked structurally — a move-to-front
// list — so the cache needs no clock, which keeps it usable inside the
// simulated-time runtime. Not safe for concurrent use; the Engine
// serializes access.
type PlanCache struct {
	capacity int
	ll       *list.List // front = most recently used; element values are *cacheEntry
	byKey    map[string]*list.Element
}

type cacheEntry struct {
	key  string
	plan *Plan
}

// NewPlanCache returns a cache holding up to capacity plans (minimum 1).
func NewPlanCache(capacity int) *PlanCache {
	if capacity < 1 {
		capacity = 1
	}
	return &PlanCache{capacity: capacity, ll: list.New(), byKey: make(map[string]*list.Element)}
}

// Len returns the number of cached plans.
func (c *PlanCache) Len() int { return c.ll.Len() }

// Get returns the plan cached under sig, bumping its recency, or nil.
func (c *PlanCache) Get(sig string) *Plan {
	el, ok := c.byKey[sig]
	if !ok {
		return nil
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).plan
}

// Put caches pl under sig as the most recent entry, evicting the least
// recently used plan if the cache is full. Evicted (or replaced) plans
// have their row buffers recycled; rows borrowed by a still-cached
// derived plan are left alone (see planRow.lent).
func (c *PlanCache) Put(sig string, pl *Plan) {
	if el, ok := c.byKey[sig]; ok {
		ent := el.Value.(*cacheEntry)
		if ent.plan != pl {
			ent.plan.release()
			ent.plan = pl
		}
		c.ll.MoveToFront(el)
		return
	}
	c.byKey[sig] = c.ll.PushFront(&cacheEntry{key: sig, plan: pl})
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		ent := oldest.Value.(*cacheEntry)
		c.ll.Remove(oldest)
		delete(c.byKey, ent.key)
		ent.plan.release()
	}
}

// bestSuffix returns the cached plan sharing the longest non-empty
// cost-fingerprint suffix with fps, restricted to plans wide enough to
// answer n items (resolve reuses suffix rows verbatim, so they must
// cover the requested width). Ties go to the more recently used plan.
func (c *PlanCache) bestSuffix(fps []string, n int) *Plan {
	var best *Plan
	bestT := 0
	for el := c.ll.Front(); el != nil; el = el.Next() {
		pl := el.Value.(*cacheEntry).plan
		if pl.n < n {
			continue
		}
		t := commonFPSuffix(pl.fps, fps)
		if t > bestT {
			best, bestT = pl, t
		}
	}
	return best
}

// commonFPSuffix counts matching trailing fingerprints, stopping at
// opaque ("") entries.
func commonFPSuffix(a, b []string) int {
	t := 0
	for t < len(a) && t < len(b) {
		fp := b[len(b)-1-t]
		if fp == "" || fp != a[len(a)-1-t] {
			break
		}
		t++
	}
	return t
}

package core

import (
	"container/list"
	"strconv"
	"strings"
	"sync"

	"repro/internal/cost"
)

// PlatformClass returns the weakest analytic class among all cost
// functions of procs: the class that decides which solver is safe for
// the platform. It is the single dispatch rule shared by the Engine,
// the mpi runtime and the chaos harness.
func PlatformClass(procs []Processor) cost.Class {
	class := cost.LinearClass
	for _, p := range procs {
		for _, f := range []cost.Function{p.Comm, p.Comp} {
			if c := cost.ClassOf(f); c < class {
				class = c
			}
		}
	}
	return class
}

// EngineStats counts how the Engine satisfied its solves.
type EngineStats struct {
	// ColdSolves is the number of from-scratch plan builds.
	ColdSolves int
	// Resolves is the number of warm starts: a cached plan's rows were
	// partially or fully reused for a different platform or item count.
	Resolves int
	// CacheHits is the number of solves answered entirely from a cached
	// plan (O(p) reconstruction, no DP work).
	CacheHits int
	// Fallbacks is the number of solves routed to the non-incremental
	// solvers: general-class platforms (Algorithm 1) or opaque cost
	// functions that cannot be fingerprinted (fresh Algorithm 2).
	Fallbacks int
	// Coalesced is the number of solves answered by waiting on an
	// identical in-flight solve (same signature and item count) instead
	// of starting their own DP — the singleflight waiters.
	Coalesced int
}

// SolveSource classifies the path a Solve took through the engine.
type SolveSource int

const (
	// SourceCold is a from-scratch plan build.
	SourceCold SolveSource = iota
	// SourceResolve is a warm start from a cached plan's suffix rows.
	SourceResolve
	// SourceCacheHit is an O(p) answer from a retained plan.
	SourceCacheHit
	// SourceFallback is a non-incremental solve: a general-class
	// platform (Algorithm 1) or an unfingerprintable cost function
	// (fresh Algorithm 2).
	SourceFallback
)

// String names the source for reports and the daemon's JSON responses.
func (s SolveSource) String() string {
	switch s {
	case SourceCold:
		return "cold"
	case SourceResolve:
		return "warm"
	case SourceCacheHit:
		return "cache"
	case SourceFallback:
		return "fallback"
	default:
		return "source(" + strconv.Itoa(int(s)) + ")"
	}
}

// SolveInfo describes how a solve was satisfied.
type SolveInfo struct {
	// Source is the path the answering solve took. For a coalesced
	// caller it is the leader's path.
	Source SolveSource
	// Coalesced reports that this caller did no DP work of its own: it
	// waited on an identical in-flight solve and shared its result.
	Coalesced bool
	// Signature is the canonical platform signature, or "" when the
	// platform cannot be fingerprinted (opaque or general-class costs).
	Signature string
}

// PlatformSignature returns the canonical cost signature of procs — the
// per-processor comm|comp fingerprints joined with ";" — and whether
// one exists. Two platforms with equal signatures solve bit-identically
// at every item count, so the signature is a safe key for plan caches
// and the daemon's durable plan store. General-class platforms and
// platforms containing an opaque cost function have no signature.
func PlatformSignature(procs []Processor) (string, bool) {
	if PlatformClass(procs) == cost.General {
		return "", false
	}
	fps := fingerprints(procs)
	for _, fp := range fps {
		if fp == "" {
			return "", false
		}
	}
	return strings.Join(fps, ";"), true
}

// Engine is the incremental solver: it answers distribution requests
// from a bounded cache of retained plans, warm-starting from the plan
// with the longest matching platform suffix and falling back to a cold
// solve only when nothing is reusable. All results are bit-identical to
// the fresh class-dispatched solvers (Algorithm 1 for general
// platforms, Algorithm 2 otherwise). Safe for concurrent use: the
// engine mutex guards only cache bookkeeping and counters, never a DP
// solve, so distinct platform signatures solve in parallel while
// identical in-flight requests coalesce onto one solve (singleflight).
type Engine struct {
	mu      sync.Mutex
	cache   *PlanCache
	tabs    *tabCache
	stats   EngineStats
	flights map[string]*flight
}

// flight is one in-progress solve that identical requests wait on. Its
// result fields are written exactly once, before done is closed.
type flight struct {
	done chan struct{}
	res  Result
	info SolveInfo
	err  error
}

// DefaultPlanCacheCapacity bounds an Engine's plan cache when
// NewEngine is given a non-positive capacity. Rebalance sequences
// shrink one platform signature at a time, so a handful of retained
// plans covers a whole crash cascade.
const DefaultPlanCacheCapacity = 8

// NewEngine returns an Engine whose cache holds up to capacity plans
// (DefaultPlanCacheCapacity when capacity <= 0).
func NewEngine(capacity int) *Engine {
	if capacity <= 0 {
		capacity = DefaultPlanCacheCapacity
	}
	return &Engine{
		cache:   NewPlanCache(capacity),
		tabs:    newTabCache(),
		flights: make(map[string]*flight),
	}
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() EngineStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Solve computes an optimal distribution of n items over procs (service
// order, root last), reusing retained DP state whenever it provably
// cannot change the result: an exact platform-signature hit answers in
// O(p); otherwise the cached plan sharing the longest cost-fingerprint
// suffix is warm-started via Plan.resolve; otherwise a cold plan is
// built and retained. General-class platforms and opaque cost functions
// bypass the plan machinery entirely.
func (e *Engine) Solve(procs []Processor, n int) (Result, error) {
	res, _, err := e.SolveDetailed(procs, n)
	return res, err
}

// SolveDetailed is Solve, additionally reporting how the answer was
// produced. The engine mutex is held only for cache bookkeeping: the
// DP itself runs unlocked, so concurrent solves of distinct signatures
// proceed in parallel, while callers requesting an identical
// (signature, item count) pair wait on the in-flight leader and share
// its result bit-for-bit.
func (e *Engine) SolveDetailed(procs []Processor, n int) (Result, SolveInfo, error) {
	if PlatformClass(procs) == cost.General {
		e.count(func(s *EngineStats) { s.Fallbacks++ })
		res, err := Algorithm1(procs, n)
		return res, SolveInfo{Source: SourceFallback}, err
	}
	fps := fingerprints(procs)
	for _, fp := range fps {
		if fp == "" {
			e.count(func(s *EngineStats) { s.Fallbacks++ })
			res, err := Algorithm2(procs, n)
			return res, SolveInfo{Source: SourceFallback}, err
		}
	}
	sig := strings.Join(fps, ";")
	key := sig + "#" + strconv.Itoa(n)

	e.mu.Lock()
	if pl := e.cache.Get(sig); pl != nil && pl.n >= n {
		e.stats.CacheHits++
		res, err := pl.Lookup(n, 0)
		e.mu.Unlock()
		return res, SolveInfo{Source: SourceCacheHit, Signature: sig}, err
	}
	if f, ok := e.flights[key]; ok {
		// An identical solve is in flight: wait for the leader instead
		// of duplicating a multi-second DP. Identical inputs fail
		// identically, so sharing the leader's error is exact too.
		e.stats.Coalesced++
		e.mu.Unlock()
		<-f.done
		info := f.info
		info.Coalesced = true
		return f.res, info, f.err
	}
	// Leader: register the flight and pick the warm-start base under
	// the lock, pinning it so a concurrent eviction cannot recycle its
	// row buffers while the resolve reads them.
	f := &flight{done: make(chan struct{})}
	e.flights[key] = f
	base := e.cache.bestSuffix(fps, n)
	if base != nil {
		base.refs++
		base.pinRows()
	}
	e.mu.Unlock()

	var pl *Plan
	var err error
	source := SourceCold
	if base != nil {
		if derived, rerr := base.resolve(e.tabs, n, procs); rerr == nil {
			pl, source = derived, SourceResolve
		}
	}
	if pl == nil {
		pl, err = solvePlan(e.tabs, procs, n)
	}

	e.mu.Lock()
	if base != nil {
		e.unpinLocked(base)
	}
	var res Result
	if err == nil {
		if source == SourceResolve {
			e.stats.Resolves++
		} else {
			e.stats.ColdSolves++
		}
		e.cache.Put(sig, pl)
		res, err = pl.Lookup(n, 0)
	}
	f.res, f.info, f.err = res, SolveInfo{Source: source, Signature: sig}, err
	delete(e.flights, key)
	e.mu.Unlock()
	close(f.done)
	return f.res, f.info, f.err
}

// unpinLocked drops one pin from a plan used as a warm-start base,
// freeing its rows if the cache evicted it while the resolve ran.
// Callers must hold e.mu.
func (e *Engine) unpinLocked(pl *Plan) {
	pl.refs--
	if pl.refs == 0 && pl.zombie {
		pl.freeRows()
	}
}

func (e *Engine) count(f func(*EngineStats)) {
	e.mu.Lock()
	f(&e.stats)
	e.mu.Unlock()
}

// PlanCache is a bounded LRU cache of retained plans keyed by the
// canonical platform signature (the joined per-processor cost
// fingerprints). Recency is tracked structurally — a move-to-front
// list — so the cache needs no clock, which keeps it usable inside the
// simulated-time runtime. Not safe for concurrent use; the Engine
// serializes access.
type PlanCache struct {
	capacity int
	ll       *list.List // front = most recently used; element values are *cacheEntry
	byKey    map[string]*list.Element
}

type cacheEntry struct {
	key  string
	plan *Plan
}

// NewPlanCache returns a cache holding up to capacity plans (minimum 1).
func NewPlanCache(capacity int) *PlanCache {
	if capacity < 1 {
		capacity = 1
	}
	return &PlanCache{capacity: capacity, ll: list.New(), byKey: make(map[string]*list.Element)}
}

// Len returns the number of cached plans.
func (c *PlanCache) Len() int { return c.ll.Len() }

// Get returns the plan cached under sig, bumping its recency, or nil.
func (c *PlanCache) Get(sig string) *Plan {
	el, ok := c.byKey[sig]
	if !ok {
		return nil
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).plan
}

// Put caches pl under sig as the most recent entry, evicting the least
// recently used plan if the cache is full. Evicted (or replaced) plans
// have their row buffers recycled; rows borrowed by a still-cached
// derived plan are left alone (see planRow.lent).
func (c *PlanCache) Put(sig string, pl *Plan) {
	if el, ok := c.byKey[sig]; ok {
		ent := el.Value.(*cacheEntry)
		if ent.plan != pl {
			ent.plan.release()
			ent.plan = pl
		}
		c.ll.MoveToFront(el)
		return
	}
	c.byKey[sig] = c.ll.PushFront(&cacheEntry{key: sig, plan: pl})
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		ent := oldest.Value.(*cacheEntry)
		c.ll.Remove(oldest)
		delete(c.byKey, ent.key)
		ent.plan.release()
	}
}

// bestSuffix returns the cached plan sharing the longest non-empty
// cost-fingerprint suffix with fps, restricted to plans wide enough to
// answer n items (resolve reuses suffix rows verbatim, so they must
// cover the requested width). Ties go to the more recently used plan.
func (c *PlanCache) bestSuffix(fps []string, n int) *Plan {
	var best *Plan
	bestT := 0
	for el := c.ll.Front(); el != nil; el = el.Next() {
		pl := el.Value.(*cacheEntry).plan
		if pl.n < n {
			continue
		}
		t := commonFPSuffix(pl.fps, fps)
		if t > bestT {
			best, bestT = pl, t
		}
	}
	return best
}

// commonFPSuffix counts matching trailing fingerprints, stopping at
// opaque ("") entries.
func commonFPSuffix(a, b []string) int {
	t := 0
	for t < len(a) && t < len(b) {
		fp := b[len(b)-1-t]
		if fp == "" || fp != a[len(a)-1-t] {
			break
		}
		t++
	}
	return t
}

// Package core implements the paper's primary contribution: static
// load-balancing of scatter operations on heterogeneous grids.
//
// The setting (Section 3.1 of the paper): p processors P1..Pp must
// process n independent data items initially held by the root. The root
// sends each processor its share in turn (single-port model), so
// processor Pi starts receiving only after P1..P(i-1) have been served,
// and finishes at
//
//	Ti = sum_{j<=i} Tcomm(j, nj) + Tcomp(i, ni)            (Eq. 1)
//
// The goal is a distribution n1..np, sum ni = n, minimizing the
// makespan T = max_i Ti (Eq. 2). By convention the root processor is
// ordered last (Pp) and has a zero communication cost to itself.
//
// The package provides, in increasing order of assumptions and speed:
//
//   - Algorithm1: exact dynamic program, O(p·n²), for arbitrary
//     non-negative cost functions.
//   - Algorithm2: the optimized exact dynamic program (binary-searched
//     crossover plus early break), for increasing cost functions.
//   - SolveLinear: the closed-form solution of Section 4 (Theorems 1-2)
//     for linear cost functions, O(p²) after pruning.
//   - Heuristic: the guaranteed linear-programming heuristic of Section
//     3.3 for affine cost functions, with the paper's rounding scheme
//     and the Eq. (4) optimality gap bound.
//
// plus the Theorem 3 ordering policy (OrderDecreasingBandwidth), the
// Section 3.4 root-selection procedure (ChooseRoot), the uniform
// baseline of the original application (Uniform), and evaluation
// helpers (FinishTimes, Makespan).
package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/cost"
)

// Processor models one computational node as seen from the root: its
// link and its speed. This matches the paper's characterization of Pi
// by the two functions Tcomm(i, x) and Tcomp(i, x).
type Processor struct {
	// Name identifies the processor in reports (e.g. "caseb").
	Name string
	// Comm is the time for this processor to receive x items from the
	// root. The root itself uses cost.Zero.
	Comm cost.Function
	// Comp is the time for this processor to compute x items.
	Comp cost.Function
}

// Validate checks that the processor has both cost functions.
func (p Processor) Validate() error {
	if p.Comm == nil {
		return fmt.Errorf("core: processor %q has no communication cost function", p.Name)
	}
	if p.Comp == nil {
		return fmt.Errorf("core: processor %q has no computation cost function", p.Name)
	}
	return nil
}

// ValidateProcessors checks a processor list for use by the solvers.
func ValidateProcessors(procs []Processor) error {
	if len(procs) == 0 {
		return errors.New("core: no processors")
	}
	for i, p := range procs {
		if err := p.Validate(); err != nil {
			return fmt.Errorf("core: processor %d: %w", i, err)
		}
	}
	return nil
}

// Distribution is the number of data items assigned to each processor,
// in the same order as the processor list (root last).
type Distribution []int

// Sum returns the total number of items in the distribution.
func (d Distribution) Sum() int {
	total := 0
	for _, x := range d {
		total += x
	}
	return total
}

// Validate checks that the distribution has one non-negative share per
// processor and sums to n.
func (d Distribution) Validate(p, n int) error {
	if len(d) != p {
		return fmt.Errorf("core: distribution has %d shares for %d processors", len(d), p)
	}
	for i, x := range d {
		if x < 0 {
			return fmt.Errorf("core: share %d is negative (%d)", i, x)
		}
	}
	if s := d.Sum(); s != n {
		return fmt.Errorf("core: distribution sums to %d, want %d", s, n)
	}
	return nil
}

// FinishTimes evaluates Eq. (1): the time at which each processor
// finishes its computation under the single-port model, with processors
// served in list order.
func FinishTimes(procs []Processor, dist Distribution) []float64 {
	times := make([]float64, len(dist))
	commSoFar := 0.0
	for i, ni := range dist {
		commSoFar += procs[i].Comm.Eval(ni)
		times[i] = commSoFar + procs[i].Comp.Eval(ni)
	}
	return times
}

// Makespan evaluates Eq. (2): the overall completion time of the
// scatter plus computation phase.
func Makespan(procs []Processor, dist Distribution) float64 {
	max := 0.0
	for _, t := range FinishTimes(procs, dist) {
		if t > max {
			max = t
		}
	}
	return max
}

// Uniform is the baseline distribution of the original application: an
// MPI_Scatter sends floor(n/p) items to everyone; we assign the
// remaining n mod p items one each to the first ranks, which is how the
// motivating code's "remaining items" handling behaves.
func Uniform(p, n int) Distribution {
	if p <= 0 {
		return nil
	}
	d := make(Distribution, p)
	base, rem := n/p, n%p
	for i := range d {
		d[i] = base
		if i < rem {
			d[i]++
		}
	}
	return d
}

// Result is the outcome of a distribution computation.
type Result struct {
	// Distribution holds the computed integer shares.
	Distribution Distribution
	// Makespan is the predicted completion time of the distribution
	// under Eq. (2).
	Makespan float64
}

// Solver computes a distribution of n items over procs (root last).
// All solvers in this package satisfy it.
type Solver func(procs []Processor, n int) (Result, error)

// bandwidthProbe is the item count used to estimate a link's marginal
// per-item cost when ordering processors. It is large enough to
// amortize any affine latency term.
const bandwidthProbe = 1024

// MarginalCommCost estimates the per-item communication cost of p's
// link by the secant slope of Tcomm between 1 item and bandwidthProbe
// items. For linear costs this is exactly alpha; for affine costs it is
// alpha up to the amortized latency.
func MarginalCommCost(p Processor) float64 {
	lo, hi := p.Comm.Eval(1), p.Comm.Eval(bandwidthProbe)
	return (hi - lo) / float64(bandwidthProbe-1)
}

// OrderDecreasingBandwidth returns a permutation of 0..p-1 implementing
// the Theorem 3 ordering policy: processors sorted by decreasing link
// bandwidth (i.e. increasing marginal communication cost), with the
// root processor — identified by rootIndex — placed last. The sort is
// stable so equal-bandwidth processors keep their relative order.
//
// Section 4.4 proves that with linear costs this ordering, combined
// with the Section 3.3 rounding, is guaranteed near-optimal; the paper
// recommends it as the general policy.
func OrderDecreasingBandwidth(procs []Processor, rootIndex int) []int {
	return orderByComm(procs, rootIndex, false)
}

// OrderIncreasingBandwidth is the adversarial ordering used by the
// paper's third experiment (Figure 4): processors sorted by increasing
// bandwidth, root still last.
func OrderIncreasingBandwidth(procs []Processor, rootIndex int) []int {
	return orderByComm(procs, rootIndex, true)
}

func orderByComm(procs []Processor, rootIndex int, ascendingBandwidth bool) []int {
	order := make([]int, 0, len(procs))
	for i := range procs {
		if i != rootIndex {
			order = append(order, i)
		}
	}
	// Insertion sort: stable and fine at these sizes.
	less := func(a, b int) bool {
		ca, cb := MarginalCommCost(procs[a]), MarginalCommCost(procs[b])
		if ascendingBandwidth {
			return ca > cb // slowest link (lowest bandwidth) first
		}
		return ca < cb // fastest link (highest bandwidth) first
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && less(order[j], order[j-1]); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	if rootIndex >= 0 && rootIndex < len(procs) {
		order = append(order, rootIndex)
	}
	return order
}

// Permute returns the processors reordered by the given permutation.
func Permute(procs []Processor, order []int) []Processor {
	out := make([]Processor, len(order))
	for i, idx := range order {
		out[i] = procs[idx]
	}
	return out
}

// InversePermute maps a distribution computed for Permute(procs, order)
// back to the original processor indexing.
func InversePermute(dist Distribution, order []int) Distribution {
	out := make(Distribution, len(dist))
	for pos, idx := range order {
		out[idx] = dist[pos]
	}
	return out
}

// RootChoice is one candidate root for the Section 3.4 selection: the
// time to move the whole data set from its original location C to this
// root, and the processor list as seen from this root (root last).
type RootChoice struct {
	// Name identifies the candidate root.
	Name string
	// Transfer is the time to ship all n items from the data's
	// original computer C to this root; zero when the data is already
	// local.
	Transfer float64
	// Procs is the processor list with communication costs measured
	// from this candidate root, ordered with the root last.
	Procs []Processor
}

// RootEvaluation records the outcome of evaluating one candidate root.
type RootEvaluation struct {
	// Choice echoes the evaluated candidate.
	Choice RootChoice
	// Result is the distribution computed for this candidate.
	Result Result
	// Total is Transfer plus the distribution's makespan; the best
	// root minimizes Total.
	Total float64
}

// ChooseRoot implements Section 3.4: evaluate every candidate root by
// adding the data-transfer time from the data's original location to
// the candidate's balanced makespan, and return the index of the
// minimizer along with every evaluation.
func ChooseRoot(n int, candidates []RootChoice, solve Solver) (int, []RootEvaluation, error) {
	if len(candidates) == 0 {
		return -1, nil, errors.New("core: no root candidates")
	}
	evals := make([]RootEvaluation, len(candidates))
	best := -1
	for i, c := range candidates {
		res, err := solve(c.Procs, n)
		if err != nil {
			return -1, nil, fmt.Errorf("core: candidate %q: %w", c.Name, err)
		}
		evals[i] = RootEvaluation{
			Choice: c,
			Result: res,
			Total:  c.Transfer + res.Makespan,
		}
		if best < 0 || evals[i].Total < evals[best].Total {
			best = i
		}
	}
	return best, evals, nil
}

// BruteForce exhaustively enumerates every distribution of n items over
// the processors and returns an optimal one. Exponential; only for
// cross-validating the dynamic programs on tiny instances in tests.
func BruteForce(procs []Processor, n int) (Result, error) {
	if err := ValidateProcessors(procs); err != nil {
		return Result{}, err
	}
	if n < 0 {
		return Result{}, fmt.Errorf("core: negative item count %d", n)
	}
	p := len(procs)
	best := Result{Makespan: math.Inf(1)}
	cur := make(Distribution, p)
	var rec func(i, remaining int)
	rec = func(i, remaining int) {
		if i == p-1 {
			cur[i] = remaining
			m := Makespan(procs, cur)
			if m < best.Makespan {
				best.Makespan = m
				best.Distribution = append(Distribution(nil), cur...)
			}
			return
		}
		for e := 0; e <= remaining; e++ {
			cur[i] = e
			rec(i+1, remaining-e)
		}
	}
	rec(0, n)
	return best, nil
}

package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cost"
)

func TestDSingleProcessor(t *testing.T) {
	// D(P1) = 1 / (1/(alpha+beta)) = alpha + beta.
	got := D([]LinearProcessor{{Alpha: 2, Beta: 3}})
	if got != 5 {
		t.Errorf("D = %g, want 5", got)
	}
}

func TestDTwoProcessors(t *testing.T) {
	// D(P1,P2) = 1 / (1/(a1+b1) + b1/((a1+b1)(a2+b2))).
	lps := []LinearProcessor{{Alpha: 1, Beta: 1}, {Alpha: 0, Beta: 1}}
	want := 1.0 / (1.0/2.0 + (1.0/2.0)*(1.0/1.0))
	if got := D(lps); math.Abs(got-want) > 1e-12 {
		t.Errorf("D = %g, want %g", got, want)
	}
}

func TestDEmptyAndInfinitelyFast(t *testing.T) {
	if got := D(nil); got != 0 {
		t.Errorf("D(nil) = %g, want 0", got)
	}
	if got := D([]LinearProcessor{{Alpha: 0, Beta: 0}}); got != 0 {
		t.Errorf("D of an infinitely fast processor = %g, want 0", got)
	}
}

func TestTheorem1SimultaneousEndings(t *testing.T) {
	// Under Theorem 1 every processor finishes at exactly t = n*D.
	lps := []LinearProcessor{
		{Name: "P1", Alpha: 0.5, Beta: 2},
		{Name: "P2", Alpha: 1, Beta: 3},
		{Name: "P3-root", Alpha: 0, Beta: 1},
	}
	n := 1000
	sol, err := SolveLinearRational(lps, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := range lps {
		if !sol.Kept[i] {
			t.Fatalf("processor %d unexpectedly pruned", i)
		}
	}
	wantT := float64(n) * D(lps)
	if math.Abs(sol.Makespan-wantT) > 1e-9*wantT {
		t.Errorf("makespan = %g, want %g", sol.Makespan, wantT)
	}
	// Verify simultaneous endings via Eq. (1) on the rational shares.
	commSoFar := 0.0
	for i, lp := range lps {
		commSoFar += lp.Alpha * sol.Shares[i]
		finish := commSoFar + lp.Beta*sol.Shares[i]
		if math.Abs(finish-sol.Makespan) > 1e-9*sol.Makespan {
			t.Errorf("processor %d finishes at %g, not %g", i, finish, sol.Makespan)
		}
	}
	// Shares sum to n.
	sum := 0.0
	for _, s := range sol.Shares {
		sum += s
	}
	if math.Abs(sum-float64(n)) > 1e-9*float64(n) {
		t.Errorf("shares sum to %g, want %d", sum, n)
	}
}

func TestTheorem1ShareRecurrence(t *testing.T) {
	// Share recurrence: n_i = 1/(alpha_i+beta_i) * prod_{j<i} beta_j/(alpha_j+beta_j) * t.
	lps := []LinearProcessor{
		{Alpha: 1, Beta: 2},
		{Alpha: 2, Beta: 2},
		{Alpha: 0, Beta: 3},
	}
	sol, err := SolveLinearRational(lps, 600)
	if err != nil {
		t.Fatal(err)
	}
	t0 := sol.Makespan
	prod := 1.0
	for i, lp := range lps {
		want := prod / (lp.Alpha + lp.Beta) * t0
		if math.Abs(sol.Shares[i]-want) > 1e-9*math.Max(1, want) {
			t.Errorf("share %d = %g, want %g", i, sol.Shares[i], want)
		}
		prod *= lp.Beta / (lp.Alpha + lp.Beta)
	}
}

func TestTheorem2PruningSlowLink(t *testing.T) {
	// P1's link is so slow that alpha_1 > D(P2..): Theorem 2 says P1
	// must receive nothing.
	lps := []LinearProcessor{
		{Name: "slowlink", Alpha: 100, Beta: 0.001},
		{Name: "fast", Alpha: 0.1, Beta: 1},
		{Name: "root", Alpha: 0, Beta: 1},
	}
	sol, err := SolveLinearRational(lps, 500)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Kept[0] {
		t.Error("slow-linked processor not pruned")
	}
	if sol.Shares[0] != 0 {
		t.Errorf("pruned processor received %g items", sol.Shares[0])
	}
	if !sol.Kept[1] || !sol.Kept[2] {
		t.Error("healthy processors pruned")
	}
}

func TestTheorem2BoundaryParticipation(t *testing.T) {
	// alpha_1 exactly equal to D(P2..) is still kept (the criterion is
	// non-strict).
	root := LinearProcessor{Name: "root", Alpha: 0, Beta: 1}
	dRoot := D([]LinearProcessor{root}) // = 1
	lps := []LinearProcessor{{Name: "edge", Alpha: dRoot, Beta: 1}, root}
	sol, err := SolveLinearRational(lps, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Kept[0] {
		t.Error("boundary processor pruned; the criterion is alpha <= D")
	}
}

func TestSolveLinearRationalMatchesDP(t *testing.T) {
	// The integer DP optimum is bounded below by the rational optimum
	// and above by the rational optimum plus the rounding guarantee.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		p := 1 + rng.Intn(5)
		lps := make([]LinearProcessor, p)
		for i := range lps {
			lps[i] = LinearProcessor{
				Alpha: float64(rng.Intn(6)) * 0.25,
				Beta:  float64(1+rng.Intn(8)) * 0.25,
			}
		}
		lps[p-1].Alpha = 0
		n := 1 + rng.Intn(60)
		rat, err := SolveLinearRational(lps, n)
		if err != nil {
			t.Fatal(err)
		}
		procs := LinearProcessors(lps)
		dp, err := Algorithm2(procs, n)
		if err != nil {
			t.Fatal(err)
		}
		if dp.Makespan < rat.Makespan-1e-9 {
			t.Errorf("trial %d: integer optimum %g below rational bound %g", trial, dp.Makespan, rat.Makespan)
		}
		bound := GuaranteeBound(procs)
		if dp.Makespan > rat.Makespan+bound+1e-9 {
			t.Errorf("trial %d: integer optimum %g exceeds rational %g + bound %g", trial, dp.Makespan, rat.Makespan, bound)
		}
	}
}

func TestSolveLinearIntegerWithinGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 30; trial++ {
		p := 1 + rng.Intn(5)
		lps := make([]LinearProcessor, p)
		for i := range lps {
			lps[i] = LinearProcessor{
				Alpha: float64(rng.Intn(6)) * 0.25,
				Beta:  float64(1+rng.Intn(8)) * 0.25,
			}
		}
		lps[p-1].Alpha = 0
		n := 1 + rng.Intn(80)
		procs := LinearProcessors(lps)
		res, err := SolveLinear(procs, n)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Distribution.Validate(p, n); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		opt, err := Algorithm2(procs, n)
		if err != nil {
			t.Fatal(err)
		}
		bound := GuaranteeBound(procs)
		if res.Makespan > opt.Makespan+bound+1e-9 {
			t.Errorf("trial %d: closed-form %g exceeds optimal %g + bound %g",
				trial, res.Makespan, opt.Makespan, bound)
		}
	}
}

func TestSolveLinearRejectsNonLinear(t *testing.T) {
	procs := []Processor{{
		Name: "affine",
		Comm: cost.Affine{Fixed: 1, PerItem: 1},
		Comp: cost.Linear{PerItem: 1},
	}}
	if _, err := SolveLinear(procs, 10); err == nil {
		t.Error("affine communication cost accepted by the linear solver")
	}
}

func TestSolveLinearRationalErrors(t *testing.T) {
	if _, err := SolveLinearRational(nil, 10); err == nil {
		t.Error("no processors accepted")
	}
	if _, err := SolveLinearRational([]LinearProcessor{{Alpha: 0, Beta: 1}}, -1); err == nil {
		t.Error("negative n accepted")
	}
	//scatterlint:ignore costinvariant invalid on purpose: exercises the solver's rejection of negative alpha
	if _, err := SolveLinearRational([]LinearProcessor{{Alpha: -1, Beta: 1}}, 5); err == nil {
		t.Error("negative alpha accepted")
	}
}

func TestSolveLinearInfinitelyFastProcessor(t *testing.T) {
	lps := []LinearProcessor{
		{Name: "free", Alpha: 0, Beta: 0},
		{Name: "root", Alpha: 0, Beta: 1},
	}
	sol, err := SolveLinearRational(lps, 42)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Makespan != 0 {
		t.Errorf("makespan = %g, want 0", sol.Makespan)
	}
	if sol.Shares[0] != 42 {
		t.Errorf("free processor got %g items, want all 42", sol.Shares[0])
	}
}

func TestExtractLinearRoundTrip(t *testing.T) {
	lps := []LinearProcessor{
		{Name: "a", Alpha: 0.25, Beta: 1.5},
		{Name: "b", Alpha: 0, Beta: 2},
	}
	got, err := ExtractLinear(LinearProcessors(lps))
	if err != nil {
		t.Fatal(err)
	}
	for i := range lps {
		if got[i] != lps[i] {
			t.Errorf("round trip: got %+v, want %+v", got[i], lps[i])
		}
	}
}

// TestTheorem3OrderingOptimalRational exhaustively verifies the
// ordering policy on small linear platforms: among all permutations
// keeping the root last, decreasing bandwidth gives the minimum
// rational makespan.
func TestTheorem3OrderingOptimalRational(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 40; trial++ {
		p := 2 + rng.Intn(4) // up to 5 processors incl. root
		lps := make([]LinearProcessor, p)
		for i := range lps {
			lps[i] = LinearProcessor{
				Alpha: 0.25 + float64(rng.Intn(16))*0.25,
				Beta:  0.25 + float64(1+rng.Intn(8))*0.25,
			}
		}
		lps[p-1].Alpha = 0 // root
		n := 100

		// Makespan with the Theorem 3 ordering.
		procs := LinearProcessors(lps)
		order := OrderDecreasingBandwidth(procs, p-1)
		ordered := make([]LinearProcessor, p)
		for pos, idx := range order {
			ordered[pos] = lps[idx]
		}
		best, err := SolveLinearRational(ordered, n)
		if err != nil {
			t.Fatal(err)
		}

		// Every permutation of the workers (root stays last).
		workers := make([]int, p-1)
		for i := range workers {
			workers[i] = i
		}
		permute(workers, func(perm []int) {
			cand := make([]LinearProcessor, 0, p)
			for _, idx := range perm {
				cand = append(cand, lps[idx])
			}
			cand = append(cand, lps[p-1])
			sol, err := SolveLinearRational(cand, n)
			if err != nil {
				t.Fatal(err)
			}
			if sol.Makespan < best.Makespan-1e-9*best.Makespan {
				t.Errorf("trial %d: permutation %v beats decreasing-bandwidth order: %g < %g",
					trial, perm, sol.Makespan, best.Makespan)
			}
		})
	}
}

// permute calls f with every permutation of xs (in place).
func permute(xs []int, f func([]int)) {
	var rec func(k int)
	rec = func(k int) {
		if k == len(xs) {
			f(xs)
			return
		}
		for i := k; i < len(xs); i++ {
			xs[k], xs[i] = xs[i], xs[k]
			rec(k + 1)
			xs[k], xs[i] = xs[i], xs[k]
		}
	}
	rec(0)
}

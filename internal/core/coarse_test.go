package core

import (
	"math/rand"
	"testing"

	"repro/internal/cost"
)

// TestSolveCoarseWithinBand compares the coarse solver against the
// exact DP on random platforms with exact dyadic costs: the coarse
// makespan must bracket the optimum within the machine-checked band,
// and the lower bound must never exceed the true optimum.
func TestSolveCoarseWithinBand(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 30; trial++ {
		p := 1 + rng.Intn(6)
		n := rng.Intn(2000)
		g := 1 + rng.Intn(64)
		var procs []Processor
		if trial%2 == 0 {
			procs = randomLinearProcs(rng, p)
		} else {
			procs = randomAffineProcs(rng, p)
		}
		exact, err := Algorithm2(procs, n)
		if err != nil {
			t.Fatal(err)
		}
		cr, err := SolveCoarse(procs, n, g)
		if err != nil {
			t.Fatal(err)
		}
		if err := cr.Distribution.Validate(p, n); err != nil {
			t.Fatalf("trial %d (p=%d n=%d g=%d): %v", trial, p, n, g, err)
		}
		if cr.Makespan < exact.Makespan {
			t.Fatalf("trial %d (p=%d n=%d g=%d): coarse %g beats the optimum %g",
				trial, p, n, g, cr.Makespan, exact.Makespan)
		}
		if cr.LowerBound > exact.Makespan {
			t.Fatalf("trial %d (p=%d n=%d g=%d): lower bound %g exceeds the optimum %g",
				trial, p, n, g, cr.LowerBound, exact.Makespan)
		}
		if cr.Makespan-exact.Makespan > cr.Band {
			t.Fatalf("trial %d (p=%d n=%d g=%d): gap %g outside the band %g",
				trial, p, n, g, cr.Makespan-exact.Makespan, cr.Band)
		}
		if cr.Exact && cr.Makespan != exact.Makespan {
			t.Fatalf("trial %d: exact fallback makespan %g != %g", trial, cr.Makespan, exact.Makespan)
		}
	}
}

// TestSolveCoarseRefinementHelps checks that the banded refinement
// never makes the answer worse than the grid-only solution.
func TestSolveCoarseRefinementHelps(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 20; trial++ {
		p := 2 + rng.Intn(5)
		n := 200 + rng.Intn(3000)
		g := 8 + rng.Intn(32)
		procs := randomAffineProcs(rng, p)
		refined, err := SolveCoarse(procs, n, g)
		if err != nil {
			t.Fatal(err)
		}
		gridOnly, err := SolveCoarseOpt(procs, n, g, CoarseOptions{SkipRefine: true})
		if err != nil {
			t.Fatal(err)
		}
		if refined.Makespan > gridOnly.Makespan {
			t.Fatalf("trial %d (p=%d n=%d g=%d): refined %g worse than grid-only %g",
				trial, p, n, g, refined.Makespan, gridOnly.Makespan)
		}
		if gridOnly.Refined || (!refined.Refined && !refined.Exact) {
			t.Fatalf("trial %d: Refined flags wrong: %v / %v", trial, gridOnly.Refined, refined.Refined)
		}
	}
}

// TestCoarsenBound machine-checks the a-priori gap on affine
// platforms: even without refinement, the grid optimum stays within
// CoarsenBound of the exact optimum, and Eq. (4)'s GuaranteeBound is
// recovered at g = 1.
func TestCoarsenBound(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	for trial := 0; trial < 20; trial++ {
		p := 1 + rng.Intn(6)
		n := 100 + rng.Intn(2000)
		g := 4 + rng.Intn(48)
		procs := randomAffineProcs(rng, p)
		exact, err := Algorithm2(procs, n)
		if err != nil {
			t.Fatal(err)
		}
		gridOnly, err := SolveCoarseOpt(procs, n, g, CoarseOptions{SkipRefine: true})
		if err != nil {
			t.Fatal(err)
		}
		if gap, bound := gridOnly.Makespan-exact.Makespan, CoarsenBound(procs, g); gap > bound {
			t.Fatalf("trial %d (p=%d n=%d g=%d): gap %g exceeds CoarsenBound %g",
				trial, p, n, g, gap, bound)
		}
	}
	procs := figure1Procs()
	if got, want := CoarsenBound(procs, 1), GuaranteeBound(procs); got != want {
		t.Errorf("CoarsenBound(procs, 1) = %g, want GuaranteeBound %g", got, want)
	}
}

// TestSolveCoarseExactFallback pins the small-instance fallback: tiny
// n or g = 1 must return the exact distribution bit-identically.
func TestSolveCoarseExactFallback(t *testing.T) {
	procs := figure1Procs()
	for _, tc := range []struct{ n, g int }{{9, 1}, {9, 4}, {40, 10}, {0, 8}} {
		exact, err := Algorithm2(procs, tc.n)
		if err != nil {
			t.Fatal(err)
		}
		cr, err := SolveCoarse(procs, tc.n, tc.g)
		if err != nil {
			t.Fatal(err)
		}
		if !cr.Exact || cr.Band != 0 || cr.Granularity != 1 {
			t.Fatalf("n=%d g=%d: want exact fallback, got %+v", tc.n, tc.g, cr)
		}
		for i := range exact.Distribution {
			if cr.Distribution[i] != exact.Distribution[i] {
				t.Fatalf("n=%d g=%d: distribution %v != exact %v", tc.n, tc.g, cr.Distribution, exact.Distribution)
			}
		}
	}
}

func TestSolveCoarseValidation(t *testing.T) {
	procs := figure1Procs()
	if _, err := SolveCoarse(procs, 100, 0); err == nil {
		t.Error("granularity 0 accepted")
	}
	if _, err := SolveCoarse(procs, 100, -3); err == nil {
		t.Error("negative granularity accepted")
	}
	if _, err := SolveCoarse(procs, -1, 8); err == nil {
		t.Error("negative n accepted")
	}
	if _, err := SolveCoarse(nil, 100, 8); err == nil {
		t.Error("no processors accepted")
	}
}

func TestSolveCoarseSingleProcessor(t *testing.T) {
	procs := []Processor{{Name: "only", Comm: cost.Zero, Comp: cost.Linear{PerItem: 0.5}}}
	cr, err := SolveCoarse(procs, 1000, 8)
	if err != nil {
		t.Fatal(err)
	}
	if cr.Distribution[0] != 1000 || cr.Makespan != 500 {
		t.Errorf("cr = %+v, want all 1000 items, makespan 500", cr)
	}
	// One processor has no split to get wrong: the band must be tight
	// enough to include the (optimal) answer it returns.
	if cr.LowerBound > cr.Makespan {
		t.Errorf("lower bound %g above makespan %g", cr.LowerBound, cr.Makespan)
	}
}

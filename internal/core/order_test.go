package core

import (
	"math/rand"
	"testing"

	"repro/internal/cost"
)

func TestBestOrderingFindsOptimum(t *testing.T) {
	// A platform where the Theorem 3 ordering is provably optimal
	// (linear costs): the exhaustive search must agree with it.
	procs := []Processor{
		{Name: "P1", Comm: cost.Linear{PerItem: 3}, Comp: cost.Linear{PerItem: 1}},
		{Name: "P2", Comm: cost.Linear{PerItem: 1}, Comp: cost.Linear{PerItem: 2}},
		{Name: "P3", Comm: cost.Linear{PerItem: 2}, Comp: cost.Linear{PerItem: 1}},
		{Name: "root", Comm: cost.Zero, Comp: cost.Linear{PerItem: 1}},
	}
	best, err := BestOrdering(procs, 60, Algorithm2)
	if err != nil {
		t.Fatal(err)
	}
	policyOrder := OrderDecreasingBandwidth(procs, 3)
	policyRes, err := Algorithm2(Permute(procs, policyOrder), 60)
	if err != nil {
		t.Fatal(err)
	}
	if best.Result.Makespan > policyRes.Makespan+1e-9 {
		t.Errorf("exhaustive best %g worse than the policy %g", best.Result.Makespan, policyRes.Makespan)
	}
	// The root stays last in the returned order.
	if best.Order[len(best.Order)-1] != 3 {
		t.Errorf("root moved: order %v", best.Order)
	}
	if err := best.Result.Distribution.Validate(4, 60); err != nil {
		t.Fatal(err)
	}
}

func TestBestOrderingBeatsEveryPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 10; trial++ {
		p := 2 + rng.Intn(3)
		procs := randomAffineProcs(rng, p)
		n := 5 + rng.Intn(25)
		best, err := BestOrdering(procs, n, Algorithm2)
		if err != nil {
			t.Fatal(err)
		}
		// Probe a few random permutations.
		for probe := 0; probe < 5; probe++ {
			perm := rng.Perm(p - 1)
			order := append(perm, p-1)
			res, err := Algorithm2(Permute(procs, order), n)
			if err != nil {
				t.Fatal(err)
			}
			if res.Makespan < best.Result.Makespan-1e-9 {
				t.Errorf("trial %d: permutation %v beats the 'best' ordering: %g < %g",
					trial, order, res.Makespan, best.Result.Makespan)
			}
		}
	}
}

func TestBestOrderingGuards(t *testing.T) {
	big := make([]Processor, MaxExhaustiveOrderingProcs+1)
	for i := range big {
		big[i] = Processor{Name: "x", Comm: cost.Zero, Comp: cost.Zero}
	}
	if _, err := BestOrdering(big, 10, Algorithm2); err == nil {
		t.Error("oversized exhaustive search accepted")
	}
	if _, err := BestOrdering(nil, 10, Algorithm2); err == nil {
		t.Error("empty processors accepted")
	}
	small := []Processor{{Name: "x", Comm: cost.Zero, Comp: cost.Linear{PerItem: 1}}}
	if _, err := BestOrdering(small, 10, nil); err == nil {
		t.Error("nil solver accepted")
	}
}

func TestBestOrderingSingleProcessor(t *testing.T) {
	procs := []Processor{{Name: "solo", Comm: cost.Zero, Comp: cost.Linear{PerItem: 2}}}
	best, err := BestOrdering(procs, 5, Algorithm2)
	if err != nil {
		t.Fatal(err)
	}
	if best.Result.Makespan != 10 || len(best.Order) != 1 {
		t.Errorf("solo result = %+v", best)
	}
}

func TestOrderingStudyBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for trial := 0; trial < 8; trial++ {
		p := 2 + rng.Intn(3)
		procs := randomLinearProcs(rng, p)
		n := 20 + rng.Intn(40)
		policy, best, worst, err := OrderingStudy(procs, n, Algorithm2)
		if err != nil {
			t.Fatal(err)
		}
		if best > policy+1e-9 || policy > worst+1e-9 {
			t.Errorf("trial %d: best %g <= policy %g <= worst %g violated", trial, best, policy, worst)
		}
	}
}

func TestOrderingStudyGuard(t *testing.T) {
	big := make([]Processor, MaxExhaustiveOrderingProcs+1)
	for i := range big {
		big[i] = Processor{Name: "x", Comm: cost.Zero, Comp: cost.Zero}
	}
	if _, _, _, err := OrderingStudy(big, 10, Algorithm2); err == nil {
		t.Error("oversized study accepted")
	}
}

func TestFactorial(t *testing.T) {
	for n, want := range map[int]int{0: 1, 1: 1, 4: 24, 6: 720} {
		if got := factorial(n); got != want {
			t.Errorf("factorial(%d) = %d, want %d", n, got, want)
		}
	}
}

package core

import (
	"errors"
	"fmt"
)

// This file implements the exhaustive ordering study of Section 4.4:
// "An exact study is feasible even in the general case [...] We can
// indeed consider all the possible orderings of our p processors, use
// Algorithm 1 to compute the theoretical execution times, and chose
// the best result. This is theoretically possible. In practice, for
// large values of p such an approach is unrealistic." BestOrdering
// makes the feasible version available (with a guard on p) and
// OrderingStudy quantifies how much the Theorem 3 policy leaves on the
// table.

// MaxExhaustiveOrderingProcs bounds the exhaustive search: (p-1)!
// solver calls explode quickly (9! = 362880).
const MaxExhaustiveOrderingProcs = 10

// OrderedResult is a distribution bound to the processor ordering it
// was computed for.
type OrderedResult struct {
	// Order is a permutation of the input processor indices (the last
	// input processor, the root, stays last).
	Order []int
	// Result is the solver's outcome on the ordered processors.
	Result Result
}

// BestOrdering exhaustively searches every ordering of the processors
// (keeping the root — the last input processor — last), solving each
// with the given solver, and returns the minimizer. It refuses p >
// MaxExhaustiveOrderingProcs; use OrderDecreasingBandwidth there (the
// paper's recommendation, optimal in the linear case by Theorem 3).
func BestOrdering(procs []Processor, n int, solve Solver) (OrderedResult, error) {
	if err := ValidateProcessors(procs); err != nil {
		return OrderedResult{}, err
	}
	p := len(procs)
	if p > MaxExhaustiveOrderingProcs {
		return OrderedResult{}, fmt.Errorf("core: exhaustive ordering over %d processors needs %d solver calls; use the Theorem 3 policy instead", p, factorial(p-1))
	}
	if solve == nil {
		return OrderedResult{}, errors.New("core: nil solver")
	}

	best := OrderedResult{}
	found := false
	workers := make([]int, p-1)
	for i := range workers {
		workers[i] = i
	}
	var solveErr error
	permuteInts(workers, func(perm []int) {
		if solveErr != nil {
			return
		}
		order := append(append([]int(nil), perm...), p-1)
		res, err := solve(Permute(procs, order), n)
		if err != nil {
			solveErr = err
			return
		}
		if !found || res.Makespan < best.Result.Makespan {
			best = OrderedResult{Order: order, Result: res}
			found = true
		}
	})
	if solveErr != nil {
		return OrderedResult{}, solveErr
	}
	return best, nil
}

// OrderingStudy compares the Theorem 3 policy against the exhaustive
// optimum and the worst ordering, returning (policy, best, worst)
// makespans. Subject to the same p guard as BestOrdering.
func OrderingStudy(procs []Processor, n int, solve Solver) (policy, best, worst float64, err error) {
	if err := ValidateProcessors(procs); err != nil {
		return 0, 0, 0, err
	}
	p := len(procs)
	if p > MaxExhaustiveOrderingProcs {
		return 0, 0, 0, fmt.Errorf("core: ordering study over %d processors is unrealistic (the paper's own caveat)", p)
	}
	order := OrderDecreasingBandwidth(procs, p-1)
	res, err := solve(Permute(procs, order), n)
	if err != nil {
		return 0, 0, 0, err
	}
	policy = res.Makespan

	found := false
	workers := make([]int, p-1)
	for i := range workers {
		workers[i] = i
	}
	var solveErr error
	permuteInts(workers, func(perm []int) {
		if solveErr != nil {
			return
		}
		fullOrder := append(append([]int(nil), perm...), p-1)
		r, err := solve(Permute(procs, fullOrder), n)
		if err != nil {
			solveErr = err
			return
		}
		if !found {
			best, worst = r.Makespan, r.Makespan
			found = true
			return
		}
		if r.Makespan < best {
			best = r.Makespan
		}
		if r.Makespan > worst {
			worst = r.Makespan
		}
	})
	if solveErr != nil {
		return 0, 0, 0, solveErr
	}
	return policy, best, worst, nil
}

func permuteInts(xs []int, f func([]int)) {
	var rec func(k int)
	rec = func(k int) {
		if k == len(xs) {
			f(xs)
			return
		}
		for i := k; i < len(xs); i++ {
			xs[k], xs[i] = xs[i], xs[k]
			rec(k + 1)
			xs[k], xs[i] = xs[i], xs[k]
		}
	}
	rec(0)
}

func factorial(n int) int {
	f := 1
	for i := 2; i <= n; i++ {
		f *= i
	}
	return f
}

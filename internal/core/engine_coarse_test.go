package core

import (
	"sync"
	"testing"
)

// coarseTestEngine builds an engine whose coarse path triggers at test
// scale instead of the production 2^17-item floor.
func coarseTestEngine(policy SolvePolicy) *Engine {
	return NewEngineConfig(EngineConfig{
		Policy:         policy,
		Granularity:    16,
		CoarseMinItems: 100,
	})
}

func TestEngineCoarsePolicy(t *testing.T) {
	procs := figure1Procs()
	n := 1500
	exact, err := Algorithm2(procs, n)
	if err != nil {
		t.Fatal(err)
	}
	for _, policy := range []SolvePolicy{PolicyCoarseRefine, PolicyCoarseOnly} {
		eng := coarseTestEngine(policy)
		res, info, err := eng.SolveDetailed(procs, n)
		if err != nil {
			t.Fatal(err)
		}
		if info.Source != SourceCoarse || info.Policy != policy {
			t.Fatalf("%v: info = %+v, want coarse source with the configured policy", policy, info)
		}
		if info.Granularity != 16 {
			t.Fatalf("%v: granularity = %d, want 16", policy, info.Granularity)
		}
		if res.Makespan < exact.Makespan {
			t.Fatalf("%v: coarse %g beats the optimum %g", policy, res.Makespan, exact.Makespan)
		}
		if res.Makespan-exact.Makespan > info.Bound {
			t.Fatalf("%v: gap %g outside the reported bound %g", policy, res.Makespan-exact.Makespan, info.Bound)
		}
		if info.LowerBound > exact.Makespan {
			t.Fatalf("%v: lower bound %g exceeds the optimum %g", policy, info.LowerBound, exact.Makespan)
		}
		if s := eng.Stats(); s.CoarseSolves != 1 || s.ColdSolves != 0 {
			t.Fatalf("%v: stats = %+v, want one coarse solve and no cold ones", policy, s)
		}

		// Second identical solve: answered from the coarse memo, same
		// distribution, no new DP work.
		res2, info2, err := eng.SolveDetailed(procs, n)
		if err != nil {
			t.Fatal(err)
		}
		if info2.Source != SourceCacheHit || info2.Bound != info.Bound {
			t.Fatalf("%v: second solve info = %+v, want a cache hit with the same band", policy, info2)
		}
		for i := range res.Distribution {
			if res2.Distribution[i] != res.Distribution[i] {
				t.Fatalf("%v: cached distribution %v != first %v", policy, res2.Distribution, res.Distribution)
			}
		}
		if s := eng.Stats(); s.CoarseSolves != 1 || s.CacheHits != 1 {
			t.Fatalf("%v: stats after hit = %+v", policy, s)
		}
	}
}

// TestEngineCoarseSmallSolvesStayExact pins the CoarseMinItems gate: a
// coarse-policy engine still answers small solves with the exact plan
// machinery, bit-identically, and retains the plan for warm starts.
func TestEngineCoarseSmallSolvesStayExact(t *testing.T) {
	procs := figure1Procs()
	eng := coarseTestEngine(PolicyCoarseRefine)
	exact, err := Algorithm2(procs, 99)
	if err != nil {
		t.Fatal(err)
	}
	res, info, err := eng.SolveDetailed(procs, 99)
	if err != nil {
		t.Fatal(err)
	}
	if info.Source != SourceCold || info.Policy != PolicyExact || info.Bound != 0 {
		t.Fatalf("info = %+v, want an exact cold solve with zero band", info)
	}
	for i := range exact.Distribution {
		if res.Distribution[i] != exact.Distribution[i] {
			t.Fatalf("distribution %v != exact %v", res.Distribution, exact.Distribution)
		}
	}
	if s := eng.Stats(); s.ColdSolves != 1 || s.CoarseSolves != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestEngineCoarseCoalesce checks that identical in-flight coarse
// solves share one DP.
func TestEngineCoarseCoalesce(t *testing.T) {
	procs := figure1Procs()
	eng := coarseTestEngine(PolicyCoarseRefine)
	const callers = 8
	var wg sync.WaitGroup
	results := make([]Result, callers)
	errs := make([]error, callers)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			results[c], _, errs[c] = eng.SolveDetailed(procs, 2000)
		}(c)
	}
	wg.Wait()
	for c := 0; c < callers; c++ {
		if errs[c] != nil {
			t.Fatal(errs[c])
		}
		for i := range results[0].Distribution {
			if results[c].Distribution[i] != results[0].Distribution[i] {
				t.Fatalf("caller %d distribution %v != %v", c, results[c].Distribution, results[0].Distribution)
			}
		}
	}
	if s := eng.Stats(); s.CoarseSolves+s.CacheHits+s.Coalesced != callers {
		t.Fatalf("stats = %+v, want every caller accounted for", s)
	}
}

func TestParsePolicy(t *testing.T) {
	for _, p := range []SolvePolicy{PolicyExact, PolicyCoarseRefine, PolicyCoarseOnly} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePolicy("approximate"); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestEngineConfigDefaults(t *testing.T) {
	eng := NewEngineConfig(EngineConfig{})
	if eng.gran != DefaultGranularity || eng.coarseMin != DefaultCoarseMinItems || eng.policy != PolicyExact {
		t.Errorf("defaults not applied: gran=%d min=%d policy=%v", eng.gran, eng.coarseMin, eng.policy)
	}
}

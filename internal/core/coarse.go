package core

import "fmt"

// This file implements the coarsen-then-refine solver for the cold
// path. The exact Algorithm 2 prices a fresh 817k-item solve at tens
// of seconds; solving the same recurrence on a grid of granularity g
// shrinks the row work by ~g² and a banded second pass refines the
// boundaries with the exact kernel. The result is not guaranteed
// optimal, but it carries a machine-checked optimality band in the
// style of the Eq. (4) rounding guarantee: a companion optimistic
// dynamic program on the same grid lower-bounds the exact optimum, so
//
//	Makespan - Band <= Topt <= Makespan
//
// holds by construction, and every consumer can see how far from
// optimal the fast answer can possibly be.
//
// Grid structure. The reachable remainders are S = {s_0..s_K} with
// s_0 = 0, s_k = r + (k-1)·g, K = ceil(n/g) and r = n - (K-1)·g in
// (0, g], so s_K = n. A grid-feasible solution keeps every prefix
// remainder ("items left for processors i..p") in S; shares are then
// multiples of g except for the one that consumes the partial segment
// r. Snapping an optimal solution's prefix remainders down to S moves
// every share by less than g, which is what makes the grid optimum
// close to the true one (see CoarsenBound).

// CoarseResult is the outcome of a coarsen-then-refine solve: a
// feasible distribution plus a machine-checked optimality band.
type CoarseResult struct {
	Result
	// LowerBound is a proven lower bound on the exact optimal
	// makespan, computed by the optimistic grid dynamic program.
	LowerBound float64
	// Band bounds the distance to optimal:
	// Makespan - Topt <= Band = max(0, Makespan - LowerBound).
	Band float64
	// Granularity is the grid step the solve ran at (1 when the
	// instance was small enough to fall back to the exact DP).
	Granularity int
	// Refined reports whether the banded refinement pass ran.
	Refined bool
	// Exact reports that the solver fell back to the exact Algorithm
	// 2, so the distribution is optimal and Band is zero.
	Exact bool
}

// CoarseOptions tunes SolveCoarseOpt. The zero value refines with a
// window of one grid step.
type CoarseOptions struct {
	// Window is the refinement half-width in items around each coarse
	// cut; <= 0 selects the granularity g.
	Window int
	// SkipRefine returns the grid-optimal distribution without the
	// banded refinement pass (the engine's coarse-only policy). The
	// band still holds; it just tends to be wider.
	SkipRefine bool
}

// SolveCoarse computes a near-optimal distribution of n items at
// granularity g: it solves the Algorithm 2 recurrence restricted to
// grid-aligned cuts (K = ceil(n/g) cells per row instead of n), then
// refines a ±g window around each coarse cut with the exact kernel.
// It requires increasing cost functions, like Algorithm2. Instances
// with n <= 4g fall back to the exact DP.
func SolveCoarse(procs []Processor, n, g int) (CoarseResult, error) {
	return solveCoarse(nil, procs, n, g, CoarseOptions{})
}

// SolveCoarseOpt is SolveCoarse with explicit refinement options.
func SolveCoarseOpt(procs []Processor, n, g int, opts CoarseOptions) (CoarseResult, error) {
	return solveCoarse(nil, procs, n, g, opts)
}

func solveCoarse(tc *tabCache, procs []Processor, n, g int, opts CoarseOptions) (CoarseResult, error) {
	if g < 1 {
		return CoarseResult{}, fmt.Errorf("core: granularity %d < 1", g)
	}
	if err := validateDPInput(procs, n); err != nil {
		return CoarseResult{}, err
	}
	if g == 1 || n <= 4*g {
		// The grid would be too small to help; the exact DP is cheap
		// here and gives a zero band.
		res, err := Algorithm2(procs, n)
		if err != nil {
			return CoarseResult{}, err
		}
		return CoarseResult{Result: res, LowerBound: res.Makespan, Granularity: 1, Exact: true}, nil
	}
	p := len(procs)
	fps := fingerprints(procs)

	K := (n + g - 1) / g
	r := n - (K-1)*g // size of the first (partial) grid segment, in (0, g]
	// sv maps a grid state k to the remainder it stands for: s_k.
	sv := func(k int) int {
		if k == 0 {
			return 0
		}
		return r + (k-1)*g
	}
	// dLo is the smallest remainder in the interval I_k = (s_{k-1}, s_k]
	// that grid state k abstracts in the lower-bound DP.
	dLo := func(k int) int {
		if k == 0 {
			return 0
		}
		return sv(k-1) + 1
	}

	// Two dynamic programs over the grid, filled in one pass per row:
	//
	// up[k]: the exact cost of the best grid-feasible split of s_k
	// items over the row's processor suffix — an upper bound on the
	// true cost, achieved by a real distribution (reconstructed from
	// choice).
	//
	// lb[k]: an optimistic value <= cost[d, i] for every d in I_k. Each
	// transition consuming j grid segments is charged the smallest
	// share that can realize it — eLo(j) = (j-1)·g + 1 interior,
	// s_{k-1}+1 when it empties the remainder — so by induction (costs
	// increasing, float rounding monotone) lb[K] at row 0 is a true
	// lower bound on the exact optimum for d = n.
	up := make([]float64, K+1)
	upNext := make([]float64, K+1)
	lb := make([]float64, K+1)
	lbNext := make([]float64, K+1)
	choice := make([][]int32, p) // choice[i][k]: grid segments Pi takes
	for i := range choice {
		choice[i] = make([]int32, K+1)
	}

	comm, comp, done := tc.tables(procs[p-1], fps[p-1], n)
	for k := 0; k <= K; k++ {
		d := sv(k)
		upNext[k] = comm[d] + comp[d]
		choice[p-1][k] = int32(k)
		d = dLo(k)
		lbNext[k] = comm[d] + comp[d]
	}
	done()

	for i := p - 2; i >= 0; i-- {
		comm, comp, done := tc.tables(procs[i], fps[i], n)
		for k := 0; k <= K; k++ {
			base := sv(k)
			bj := 0
			bm := comm[0] + maxf(comp[0], upNext[k])
			lm := comm[0] + maxf(comp[0], lbNext[k])
			for j := 1; j <= k; j++ {
				e := base - sv(k-j)
				if m := comm[e] + maxf(comp[e], upNext[k-j]); m < bm {
					bj, bm = j, m
				}
				elo := (j-1)*g + 1
				if j == k {
					elo = dLo(k)
				}
				if m := comm[elo] + maxf(comp[elo], lbNext[k-j]); m < lm {
					lm = m
				}
			}
			up[k] = bm
			choice[i][k] = int32(bj)
			lb[k] = lm
		}
		done()
		up, upNext = upNext, up
		lb, lbNext = lbNext, lb
	}
	lower := lbNext[K]

	// Reconstruct the grid-optimal distribution.
	dist := make(Distribution, p)
	k := K
	for i := 0; i < p; i++ {
		j := int(choice[i][k])
		dist[i] = sv(k) - sv(k-j)
		k -= j
	}

	if opts.SkipRefine {
		res := Result{Distribution: dist, Makespan: Makespan(procs, dist)}
		band := res.Makespan - lower
		if band < 0 {
			band = 0
		}
		return CoarseResult{Result: res, LowerBound: lower, Band: band, Granularity: g}, nil
	}

	// Banded refinement: re-run the exact recurrence restricted to a
	// ±w window around the coarse trajectory's prefix remainders. The
	// coarse trajectory itself lies inside every window, so the refined
	// cost never exceeds the coarse one; the windows are monotone
	// (rem[i] >= rem[i+1]), so every banded cell has a feasible share.
	w := opts.Window
	if w <= 0 {
		w = g
	}
	rem := make([]int, p+1)
	rem[0] = n
	for i := 0; i < p; i++ {
		rem[i+1] = rem[i] - dist[i]
	}
	lo := make([]int, p)
	hi := make([]int, p)
	for i := 0; i < p; i++ {
		lo[i] = rem[i] - w
		if lo[i] < 0 {
			lo[i] = 0
		}
		hi[i] = rem[i] + w
		if hi[i] > n {
			hi[i] = n
		}
	}
	// The first row is only ever read at d = n (the full problem).
	lo[0], hi[0] = n, n

	costW := make([][]float64, p)
	choiceW := make([][]int32, p)
	for i := range costW {
		costW[i] = make([]float64, hi[i]-lo[i]+1)
		choiceW[i] = make([]int32, hi[i]-lo[i]+1)
	}

	comm, comp, done = tc.tables(procs[p-1], fps[p-1], n)
	for d := lo[p-1]; d <= hi[p-1]; d++ {
		costW[p-1][d-lo[p-1]] = comm[d] + comp[d]
		choiceW[p-1][d-lo[p-1]] = int32(d)
	}
	done()
	for i := p - 2; i >= 0; i-- {
		comm, comp, done := tc.tables(procs[i], fps[i], n)
		refineRow(comm, comp, costW[i+1], lo[i+1], costW[i], choiceW[i], lo[i], hi[i])
		done()
	}

	refined := make(Distribution, p)
	d := n
	for i := 0; i < p; i++ {
		e := int(choiceW[i][d-lo[i]])
		refined[i] = e
		d -= e
	}
	if err := refined.Validate(p, n); err != nil {
		return CoarseResult{}, fmt.Errorf("core: coarse refinement produced an invalid distribution: %w", err)
	}

	res := Result{Distribution: refined, Makespan: Makespan(procs, refined)}
	band := res.Makespan - lower
	if band < 0 {
		band = 0
	}
	return CoarseResult{Result: res, LowerBound: lower, Band: band, Granularity: g, Refined: true}, nil
}

// refineRow fills one banded DP row: cost[d-lo] and choice[d-lo] for d
// in [lo, hi], where the next row is only known on [loNext, loNext +
// len(next) - 1]. The share range for each d is clipped so d-e stays
// inside the next row's window; windows produced by solveCoarse are
// monotone, which keeps that range non-empty. Unlike rowRange there is
// no early break: a banded next row is not monotone at its window
// edges, so the full clipped range is scanned (it is at most 2w+1
// wide). Ties keep the smallest share, like Algorithm 1.
func refineRow(comm, comp, next []float64, loNext int, cost []float64, choice []int32, lo, hi int) {
	hiNext := loNext + len(next) - 1
	for d := lo; d <= hi; d++ {
		eMin := d - hiNext
		if eMin < 0 {
			eMin = 0
		}
		eMax := d - loNext
		sol := eMin
		min := comm[eMin] + maxf(comp[eMin], next[d-eMin-loNext])
		for e := eMin + 1; e <= eMax; e++ {
			if m := comm[e] + maxf(comp[e], next[d-e-loNext]); m < min {
				sol, min = e, m
			}
		}
		cost[d-lo] = min
		choice[d-lo] = int32(sol)
	}
}

// CoarsenBound computes the a-priori optimality gap of solving at
// granularity g on affine platforms, generalizing Eq. (4) (which is
// the g = 1 case backing the rounding guarantee):
//
//	Topt <= Tcoarse <= Topt + sum_j Tcomm(j, g) + max_i Tcomp(i, g)
//
// Snapping an optimal solution's prefix remainders down to the grid
// moves every share by less than g, which for affine costs adds at
// most Tcomm(j, g) per link plus Tcomp(i, g) on the critical
// processor. The machine-checked CoarseResult.Band is usually far
// tighter; this bound needs no solve at all.
func CoarsenBound(procs []Processor, g int) float64 {
	sum := 0.0
	maxComp := 0.0
	for _, p := range procs {
		sum += p.Comm.Eval(g)
		if c := p.Comp.Eval(g); c > maxComp {
			maxComp = c
		}
	}
	return sum + maxComp
}

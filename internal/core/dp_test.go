package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cost"
)

// randomLinearProcs draws processors with small integer-grid alpha/beta
// so cost comparisons are exact in float64.
func randomLinearProcs(rng *rand.Rand, p int) []Processor {
	procs := make([]Processor, p)
	for i := range procs {
		procs[i] = Processor{
			Name: "P" + string(rune('1'+i)),
			Comm: cost.Linear{PerItem: float64(rng.Intn(8)) * 0.25},
			Comp: cost.Linear{PerItem: float64(1+rng.Intn(8)) * 0.25},
		}
	}
	// Root last, free link.
	procs[p-1].Comm = cost.Zero
	return procs
}

// randomAffineProcs draws processors with affine costs on an exact grid.
func randomAffineProcs(rng *rand.Rand, p int) []Processor {
	procs := make([]Processor, p)
	for i := range procs {
		procs[i] = Processor{
			Name: "A" + string(rune('1'+i)),
			Comm: cost.Affine{Fixed: float64(rng.Intn(4)) * 0.5, PerItem: float64(rng.Intn(8)) * 0.25},
			Comp: cost.Affine{Fixed: float64(rng.Intn(4)) * 0.5, PerItem: float64(1+rng.Intn(8)) * 0.25},
		}
	}
	procs[p-1].Comm = cost.Zero
	return procs
}

func TestAlgorithm1SingleProcessor(t *testing.T) {
	procs := []Processor{{Name: "only", Comm: cost.Zero, Comp: cost.Linear{PerItem: 2}}}
	res, err := Algorithm1(procs, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Distribution[0] != 7 || res.Makespan != 14 {
		t.Errorf("res = %+v, want all 7 items, makespan 14", res)
	}
}

func TestAlgorithm1ZeroItems(t *testing.T) {
	res, err := Algorithm1(figure1Procs(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Distribution.Sum() != 0 || res.Makespan != 0 {
		t.Errorf("res = %+v, want empty distribution", res)
	}
}

func TestAlgorithm1FewerItemsThanProcessors(t *testing.T) {
	res, err := Algorithm1(figure1Procs(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Distribution.Validate(4, 2); err != nil {
		t.Fatal(err)
	}
	bf, err := BruteForce(figure1Procs(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != bf.Makespan {
		t.Errorf("makespan = %g, brute force %g", res.Makespan, bf.Makespan)
	}
}

func TestAlgorithm1InputValidation(t *testing.T) {
	if _, err := Algorithm1(nil, 3); err == nil {
		t.Error("nil processors accepted")
	}
	if _, err := Algorithm1(figure1Procs(), -1); err == nil {
		t.Error("negative n accepted")
	}
}

func TestAlgorithm1MatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 40; trial++ {
		p := 1 + rng.Intn(4)
		n := rng.Intn(9)
		procs := randomLinearProcs(rng, p)
		got, err := Algorithm1(procs, n)
		if err != nil {
			t.Fatal(err)
		}
		want, err := BruteForce(procs, n)
		if err != nil {
			t.Fatal(err)
		}
		if err := got.Distribution.Validate(p, n); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got.Makespan != want.Makespan {
			t.Errorf("trial %d (p=%d n=%d): Algorithm1 makespan %g, brute force %g (dist %v vs %v)",
				trial, p, n, got.Makespan, want.Makespan, got.Distribution, want.Distribution)
		}
	}
}

func TestAlgorithm1MatchesBruteForceAffine(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		p := 1 + rng.Intn(3)
		n := rng.Intn(8)
		procs := randomAffineProcs(rng, p)
		got, err := Algorithm1(procs, n)
		if err != nil {
			t.Fatal(err)
		}
		want, err := BruteForce(procs, n)
		if err != nil {
			t.Fatal(err)
		}
		if got.Makespan != want.Makespan {
			t.Errorf("trial %d: Algorithm1 %g, brute force %g", trial, got.Makespan, want.Makespan)
		}
	}
}

// TestAlgorithm1GeneralCosts exercises the DP with non-monotone cost
// functions, which only Algorithm 1 supports.
func TestAlgorithm1GeneralCosts(t *testing.T) {
	// Computation gets cheaper per item in bulk (e.g. vectorization):
	// non-affine, but still non-negative and null at zero.
	bulk := cost.Func(func(x int) float64 { return 10 * math.Sqrt(float64(x)) })
	procs := []Processor{
		{Name: "bulk", Comm: cost.Linear{PerItem: 0.5}, Comp: bulk},
		{Name: "root", Comm: cost.Zero, Comp: cost.Linear{PerItem: 2}},
	}
	got, err := Algorithm1(procs, 12)
	if err != nil {
		t.Fatal(err)
	}
	want, err := BruteForce(procs, 12)
	if err != nil {
		t.Fatal(err)
	}
	if got.Makespan != want.Makespan {
		t.Errorf("Algorithm1 %g, brute force %g", got.Makespan, want.Makespan)
	}
}

func TestAlgorithm2MatchesAlgorithm1(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		p := 1 + rng.Intn(5)
		n := rng.Intn(40)
		var procs []Processor
		if trial%2 == 0 {
			procs = randomLinearProcs(rng, p)
		} else {
			procs = randomAffineProcs(rng, p)
		}
		a1, err := Algorithm1(procs, n)
		if err != nil {
			t.Fatal(err)
		}
		a2, err := Algorithm2(procs, n)
		if err != nil {
			t.Fatal(err)
		}
		if err := a2.Distribution.Validate(p, n); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if a1.Makespan != a2.Makespan {
			t.Errorf("trial %d (p=%d n=%d): Algorithm1 %g != Algorithm2 %g (%v vs %v)",
				trial, p, n, a1.Makespan, a2.Makespan, a1.Distribution, a2.Distribution)
		}
	}
}

func TestAlgorithm2AblationsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	variants := []Algorithm2Options{
		{},
		{DisableBinarySearch: true},
		{DisableEarlyBreak: true},
		{DisableBinarySearch: true, DisableEarlyBreak: true},
	}
	for trial := 0; trial < 25; trial++ {
		p := 1 + rng.Intn(5)
		n := rng.Intn(30)
		procs := randomAffineProcs(rng, p)
		ref, err := Algorithm2Opt(procs, n, variants[0])
		if err != nil {
			t.Fatal(err)
		}
		for vi, v := range variants[1:] {
			got, err := Algorithm2Opt(procs, n, v)
			if err != nil {
				t.Fatal(err)
			}
			if got.Makespan != ref.Makespan {
				t.Errorf("trial %d variant %d: makespan %g != %g", trial, vi+1, got.Makespan, ref.Makespan)
			}
		}
	}
}

func TestAlgorithm2Table1Shape(t *testing.T) {
	// A miniature of the paper's experiment: heterogeneous linear
	// processors; the balanced makespan must beat the uniform one.
	procs := []Processor{
		{Name: "caseb", Comm: cost.Linear{PerItem: 1.00e-5}, Comp: cost.Linear{PerItem: 0.004629}},
		{Name: "pellinore", Comm: cost.Linear{PerItem: 1.12e-5}, Comp: cost.Linear{PerItem: 0.009365}},
		{Name: "seven", Comm: cost.Linear{PerItem: 2.10e-5}, Comp: cost.Linear{PerItem: 0.016156}},
		{Name: "merlin", Comm: cost.Linear{PerItem: 8.15e-5}, Comp: cost.Linear{PerItem: 0.003976}},
		{Name: "dinadan", Comm: cost.Zero, Comp: cost.Linear{PerItem: 0.009288}},
	}
	n := 5000
	opt, err := Algorithm2(procs, n)
	if err != nil {
		t.Fatal(err)
	}
	uni := Makespan(procs, Uniform(len(procs), n))
	if opt.Makespan >= uni {
		t.Errorf("balanced %g not better than uniform %g", opt.Makespan, uni)
	}
	// The finish times of the balanced run should be nearly equal
	// (simultaneous endings, Theorem 2 conditions hold here).
	ft := FinishTimes(procs, opt.Distribution)
	min, max := ft[0], ft[0]
	for _, f := range ft {
		if f < min {
			min = f
		}
		if f > max {
			max = f
		}
	}
	if (max-min)/max > 0.02 {
		t.Errorf("balanced finish times spread %g%% (%v)", 100*(max-min)/max, ft)
	}
}

func TestAlgorithm2LargeNSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	procs := figure1Procs()
	res, err := Algorithm2(procs, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Distribution.Validate(4, 5000); err != nil {
		t.Fatal(err)
	}
}

func TestRequireIncreasing(t *testing.T) {
	if err := RequireIncreasing(figure1Procs(), 100); err != nil {
		t.Errorf("linear processors rejected: %v", err)
	}
	bumpy := []Processor{{
		Name: "bumpy",
		Comm: cost.Zero,
		Comp: cost.Func(func(x int) float64 { return math.Abs(float64(10 - x)) }),
	}}
	if err := RequireIncreasing(bumpy, 20); err == nil {
		t.Error("non-monotone computation cost accepted")
	}
}

// TestDPOptimalityInvariant checks, on random instances, that no
// single-item move between two processors improves the DP's makespan —
// a local-optimality property implied by global optimality.
func TestDPOptimalityInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 20; trial++ {
		p := 2 + rng.Intn(4)
		n := 5 + rng.Intn(30)
		procs := randomLinearProcs(rng, p)
		res, err := Algorithm2(procs, n)
		if err != nil {
			t.Fatal(err)
		}
		for from := 0; from < p; from++ {
			if res.Distribution[from] == 0 {
				continue
			}
			for to := 0; to < p; to++ {
				if to == from {
					continue
				}
				moved := append(Distribution(nil), res.Distribution...)
				moved[from]--
				moved[to]++
				if m := Makespan(procs, moved); m < res.Makespan-1e-9 {
					t.Errorf("trial %d: moving one item %d->%d improves %g to %g (dist %v)",
						trial, from, to, res.Makespan, m, res.Distribution)
				}
			}
		}
	}
}

package core

import (
	"testing"

	"repro/internal/cost"
)

// fuzzPlatform deterministically builds a p-processor increasing-cost
// platform (root last, zero comm) from two seed bytes, cycling through
// the fingerprintable cost types so suffix reuse sees linear, affine
// and tabulated rows.
func fuzzPlatform(p int, a, b uint8) []Processor {
	table := func(seed int) cost.Table {
		vals := make([]float64, 12)
		for k := 1; k < len(vals); k++ {
			vals[k] = vals[k-1] + float64((seed+k)%4)*0.25
		}
		return cost.Table{Values: vals, Increasing: true}
	}
	procs := make([]Processor, p)
	for i := range procs {
		var comm, comp cost.Function
		switch (int(a) + i) % 3 {
		case 0:
			comm = cost.Linear{PerItem: float64(1+(int(b)+i)%5) * 0.25}
		case 1:
			comm = cost.Affine{Fixed: float64((int(a)+2*i)%3) * 0.5, PerItem: float64(1+(int(b)+i)%4) * 0.25}
		default:
			comm = table(int(a) + i)
		}
		switch (int(b) + i) % 3 {
		case 0:
			comp = cost.Linear{PerItem: float64(1+(int(a)+i)%6) * 0.25}
		case 1:
			comp = cost.Affine{Fixed: float64((int(b)+i)%2) * 0.25, PerItem: float64(1+(int(a)+2*i)%5) * 0.25}
		default:
			comp = table(int(b) + 3*i)
		}
		procs[i] = Processor{Name: "f", Comm: comm, Comp: comp}
	}
	procs[p-1].Comm = cost.Zero
	return procs
}

// FuzzPlanResolve drives a retained plan through a randomized crash
// schedule — up to three cascading crashes of non-root processors, each
// with its own remaining item count — and asserts after every crash
// that the (chained) warm-started Resolve returns a distribution
// bit-identical to a fresh Algorithm 2 solve on the survivors. This is
// the property the mpi rebalance path and the chaos determinism
// invariant rely on.
func FuzzPlanResolve(f *testing.F) {
	f.Add(uint8(4), uint8(30), uint8(3), uint8(5), uint16(0x0000), uint8(20))
	f.Add(uint8(6), uint8(47), uint8(1), uint8(9), uint16(0x0421), uint8(7))
	f.Add(uint8(3), uint8(12), uint8(7), uint8(2), uint16(0xffff), uint8(0))
	f.Add(uint8(5), uint8(40), uint8(0), uint8(0), uint16(0x0132), uint8(40))
	f.Fuzz(func(t *testing.T, pRaw, nRaw, a, b uint8, mask uint16, remRaw uint8) {
		p := 2 + int(pRaw%5)
		n := int(nRaw % 48)
		procs := fuzzPlatform(p, a, b)

		plan, err := SolvePlan(procs, n)
		if err != nil {
			t.Fatal(err)
		}
		// Sanity: the retained plan's own answer matches Algorithm 2.
		got, err := plan.Lookup(n, 0)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Algorithm2(procs, n)
		if err != nil {
			t.Fatal(err)
		}
		if !sameDist(got.Distribution, want.Distribution) || got.Makespan != want.Makespan {
			t.Fatalf("plan differs from Algorithm2: %v (%g) vs %v (%g)",
				got.Distribution, got.Makespan, want.Distribution, want.Makespan)
		}

		cur := procs
		remaining := n
		for round := 0; round < 3 && len(cur) > 1; round++ {
			// Crash one non-root survivor picked by this round's nibble.
			victim := int(mask>>(4*round)) % (len(cur) - 1)
			survivors := make([]Processor, 0, len(cur)-1)
			survivors = append(survivors, cur[:victim]...)
			survivors = append(survivors, cur[victim+1:]...)
			// Shrink the outstanding pool (reclaimed items re-scattered).
			if remaining > 0 {
				remaining -= int(remRaw) % (remaining + 1)
			}

			got, err := plan.Resolve(remaining, survivors)
			if err != nil {
				t.Fatal(err)
			}
			want, err := Algorithm2(survivors, remaining)
			if err != nil {
				t.Fatal(err)
			}
			if !sameDist(got.Distribution, want.Distribution) || got.Makespan != want.Makespan {
				t.Fatalf("round %d victim %d: Resolve(%d) = %v (%g), fresh = %v (%g)",
					round, victim, remaining, got.Distribution, got.Makespan,
					want.Distribution, want.Makespan)
			}
			// Chain: the next round resolves against the derived plan,
			// mirroring how the Engine warm-starts crash cascades.
			plan, err = plan.resolve(nil, remaining, survivors, 0)
			if err != nil {
				t.Fatal(err)
			}
			cur = survivors
		}
	})
}

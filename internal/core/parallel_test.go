package core

import (
	"math/rand"
	"testing"
)

func TestAlgorithm2ParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 15; trial++ {
		p := 1 + rng.Intn(6)
		n := rng.Intn(3000)
		var procs []Processor
		if trial%2 == 0 {
			procs = randomLinearProcs(rng, p)
		} else {
			procs = randomAffineProcs(rng, p)
		}
		seq, err := Algorithm2(procs, n)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 1, 2, 7} {
			par, err := Algorithm2Parallel(procs, n, workers)
			if err != nil {
				t.Fatal(err)
			}
			if par.Makespan != seq.Makespan {
				t.Fatalf("trial %d workers %d: parallel %g != sequential %g",
					trial, workers, par.Makespan, seq.Makespan)
			}
			// Bit-identical distributions (same tie-breaking).
			for i := range seq.Distribution {
				if par.Distribution[i] != seq.Distribution[i] {
					t.Fatalf("trial %d workers %d: distributions differ: %v vs %v",
						trial, workers, par.Distribution, seq.Distribution)
				}
			}
		}
	}
}

func TestAlgorithm2ParallelValidation(t *testing.T) {
	if _, err := Algorithm2Parallel(nil, 10, 4); err == nil {
		t.Error("no processors accepted")
	}
	if _, err := Algorithm2Parallel(figure1Procs(), -1, 4); err == nil {
		t.Error("negative n accepted")
	}
}

func TestAlgorithm2ParallelSingleProcessor(t *testing.T) {
	procs := figure1Procs()[3:]
	res, err := Algorithm2Parallel(procs, 9, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Distribution[0] != 9 {
		t.Errorf("solo distribution = %v", res.Distribution)
	}
}

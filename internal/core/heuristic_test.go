package core

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cost"
)

func TestHeuristicMatchesDPOnLinear(t *testing.T) {
	// On linear instances the heuristic's makespan must stay within
	// the Eq. (4) guarantee of the exact DP optimum.
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 30; trial++ {
		p := 1 + rng.Intn(5)
		procs := randomLinearProcs(rng, p)
		n := 1 + rng.Intn(80)
		h, err := Heuristic(procs, n)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Distribution.Validate(p, n); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		opt, err := Algorithm2(procs, n)
		if err != nil {
			t.Fatal(err)
		}
		bound := GuaranteeBound(procs)
		if h.Makespan < opt.Makespan-1e-9 {
			t.Errorf("trial %d: heuristic %g beats the optimum %g", trial, h.Makespan, opt.Makespan)
		}
		if h.Makespan > opt.Makespan+bound+1e-9 {
			t.Errorf("trial %d: heuristic %g exceeds optimum %g + bound %g",
				trial, h.Makespan, opt.Makespan, bound)
		}
	}
}

func TestHeuristicWithinGuaranteeOnAffine(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		p := 1 + rng.Intn(4)
		procs := randomAffineProcs(rng, p)
		n := 1 + rng.Intn(50)
		h, err := Heuristic(procs, n)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := Algorithm2(procs, n)
		if err != nil {
			t.Fatal(err)
		}
		bound := GuaranteeBound(procs)
		if h.Makespan > opt.Makespan+bound+1e-9 {
			t.Errorf("trial %d: heuristic %g exceeds optimum %g + bound %g (p=%d n=%d)",
				trial, h.Makespan, opt.Makespan, bound, p, n)
		}
	}
}

func TestHeuristicRationalIsLowerBoundForItsOrdering(t *testing.T) {
	// The LP relaxation never exceeds the integer optimum... for cost
	// functions that are genuinely affine on all of [0, n] (the LP
	// charges fixed costs even at share 0, so we use pure linear costs
	// here where the subtlety vanishes).
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 20; trial++ {
		p := 1 + rng.Intn(5)
		procs := randomLinearProcs(rng, p)
		n := 1 + rng.Intn(60)
		aps, err := ExtractAffine(procs)
		if err != nil {
			t.Fatal(err)
		}
		rat, err := HeuristicRational(aps, n)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := Algorithm2(procs, n)
		if err != nil {
			t.Fatal(err)
		}
		ratT, _ := rat.Makespan.Float64()
		if opt.Makespan < ratT-1e-9 {
			t.Errorf("trial %d: integer optimum %g below the LP bound %g", trial, opt.Makespan, ratT)
		}
	}
}

func TestHeuristicRationalSharesSumToN(t *testing.T) {
	aps := []AffineProcessor{
		{Name: "a", CommFixed: 0.5, CommPerItem: 0.25, CompFixed: 1, CompPerItem: 2},
		{Name: "b", CommFixed: 0, CommPerItem: 0.5, CompFixed: 0, CompPerItem: 1},
		{Name: "root", CompPerItem: 1.5},
	}
	rat, err := HeuristicRational(aps, 97)
	if err != nil {
		t.Fatal(err)
	}
	sum := new(big.Rat)
	for _, s := range rat.Shares {
		if s.Sign() < 0 {
			t.Errorf("negative rational share %s", s.RatString())
		}
		sum.Add(sum, s)
	}
	if sum.Cmp(new(big.Rat).SetInt64(97)) != 0 {
		t.Errorf("rational shares sum to %s, want 97", sum.RatString())
	}
}

func TestHeuristicRationalEqualsClosedFormOnLinear(t *testing.T) {
	// For linear costs, the LP relaxation optimum must coincide with
	// the Theorem 1 closed form (both are the exact rational optimum).
	lps := []LinearProcessor{
		{Name: "P1", Alpha: 0.25, Beta: 1.5},
		{Name: "P2", Alpha: 0.5, Beta: 0.75},
		{Name: "root", Alpha: 0, Beta: 1},
	}
	n := 500
	cf, err := SolveLinearRational(lps, n)
	if err != nil {
		t.Fatal(err)
	}
	aps, err := ExtractAffine(LinearProcessors(lps))
	if err != nil {
		t.Fatal(err)
	}
	lpSol, err := HeuristicRational(aps, n)
	if err != nil {
		t.Fatal(err)
	}
	lpT, _ := lpSol.Makespan.Float64()
	if math.Abs(lpT-cf.Makespan) > 1e-9*cf.Makespan {
		t.Errorf("LP relaxation %g != closed form %g", lpT, cf.Makespan)
	}
}

func TestHeuristicErrors(t *testing.T) {
	if _, err := Heuristic(nil, 5); err == nil {
		t.Error("no processors accepted")
	}
	nonAffine := []Processor{{
		Name: "sqrt",
		Comm: cost.Zero,
		Comp: cost.Func(func(x int) float64 { return math.Sqrt(float64(x)) }),
	}}
	if _, err := Heuristic(nonAffine, 5); err == nil {
		t.Error("non-affine computation cost accepted")
	}
	if _, err := HeuristicRational(nil, 5); err == nil {
		t.Error("empty affine list accepted")
	}
	if _, err := HeuristicRational([]AffineProcessor{{CompPerItem: 1}}, -2); err == nil {
		t.Error("negative n accepted")
	}
}

func TestExtractAffineRoundTrip(t *testing.T) {
	aps := []AffineProcessor{
		{Name: "x", CommFixed: 0.5, CommPerItem: 0.25, CompFixed: 2, CompPerItem: 1},
		{Name: "root", CommFixed: 0, CommPerItem: 0, CompFixed: 0, CompPerItem: 3},
	}
	procs := []Processor{aps[0].Processor(), aps[1].Processor()}
	got, err := ExtractAffine(procs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range aps {
		if math.Abs(got[i].CommFixed-aps[i].CommFixed) > 1e-12 ||
			math.Abs(got[i].CommPerItem-aps[i].CommPerItem) > 1e-12 ||
			math.Abs(got[i].CompFixed-aps[i].CompFixed) > 1e-12 ||
			math.Abs(got[i].CompPerItem-aps[i].CompPerItem) > 1e-12 {
			t.Errorf("round trip: got %+v, want %+v", got[i], aps[i])
		}
	}
}

func TestGuaranteeBound(t *testing.T) {
	procs := []Processor{
		{Comm: cost.Linear{PerItem: 2}, Comp: cost.Linear{PerItem: 5}},
		{Comm: cost.Linear{PerItem: 3}, Comp: cost.Linear{PerItem: 1}},
	}
	// sum Tcomm(j,1) = 5; max Tcomp(i,1) = 5.
	if got := GuaranteeBound(procs); got != 10 {
		t.Errorf("GuaranteeBound = %g, want 10", got)
	}
}

func TestRoundRatSharesExact(t *testing.T) {
	shares := []*big.Rat{big.NewRat(7, 2), big.NewRat(5, 2), big.NewRat(4, 1)}
	dist, err := RoundRatShares(shares, 10)
	if err != nil {
		t.Fatal(err)
	}
	if dist.Sum() != 10 {
		t.Errorf("rounded sum = %d, want 10", dist.Sum())
	}
	for i, s := range shares {
		f, _ := s.Float64()
		if math.Abs(float64(dist[i])-f) >= 1+1e-9 {
			t.Errorf("share %d moved from %g to %d (>= 1)", i, f, dist[i])
		}
	}
}

func TestRoundRatSharesAlreadyInteger(t *testing.T) {
	shares := []*big.Rat{big.NewRat(3, 1), big.NewRat(0, 1), big.NewRat(7, 1)}
	dist, err := RoundRatShares(shares, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := Distribution{3, 0, 7}
	for i := range want {
		if dist[i] != want[i] {
			t.Errorf("dist = %v, want %v", dist, want)
			break
		}
	}
}

func TestRoundRatSharesSingle(t *testing.T) {
	dist, err := RoundRatShares([]*big.Rat{big.NewRat(5, 1)}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if dist[0] != 5 {
		t.Errorf("dist = %v, want [5]", dist)
	}
}

func TestRoundRatSharesErrors(t *testing.T) {
	if _, err := RoundRatShares(nil, 0); err == nil {
		t.Error("empty shares accepted")
	}
	if _, err := RoundRatShares([]*big.Rat{big.NewRat(1, 2)}, 5); err == nil {
		t.Error("wrong sum accepted")
	}
	if _, err := RoundRatShares([]*big.Rat{big.NewRat(-1, 1), big.NewRat(6, 1)}, 5); err == nil {
		t.Error("negative share accepted")
	}
	if _, err := RoundRatShares([]*big.Rat{nil}, 0); err == nil {
		t.Error("nil share accepted")
	}
}

// TestRoundRatSharesProperty: for random rational shares summing to n,
// the rounding preserves the sum and moves every share by less than 1.
func TestRoundRatSharesProperty(t *testing.T) {
	f := func(numerators []uint16, denom uint8) bool {
		if len(numerators) == 0 {
			return true
		}
		if len(numerators) > 12 {
			numerators = numerators[:12]
		}
		d := int64(denom%7) + 1
		shares := make([]*big.Rat, len(numerators))
		total := new(big.Rat)
		for i, num := range numerators {
			shares[i] = big.NewRat(int64(num%1000), d)
			total.Add(total, shares[i])
		}
		// Top up the last share to reach the next integer total.
		floorTotal := new(big.Int).Quo(total.Num(), total.Denom())
		nBig := new(big.Int).Add(floorTotal, big.NewInt(1))
		topUp := new(big.Rat).Sub(new(big.Rat).SetInt(nBig), total)
		shares[len(shares)-1].Add(shares[len(shares)-1], topUp)
		n := int(nBig.Int64())

		dist, err := RoundRatShares(shares, n)
		if err != nil {
			return false
		}
		if dist.Sum() != n {
			return false
		}
		for i, s := range dist {
			diff := new(big.Rat).Sub(new(big.Rat).SetInt64(int64(s)), shares[i])
			if diff.Cmp(big.NewRat(1, 1)) >= 0 || diff.Cmp(big.NewRat(-1, 1)) <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRoundSharesFloat(t *testing.T) {
	dist := RoundShares([]float64{2.5, 3.5, 4}, 10)
	if dist.Sum() != 10 {
		t.Errorf("sum = %d, want 10", dist.Sum())
	}
	for i, want := range []float64{2.5, 3.5, 4} {
		if math.Abs(float64(dist[i])-want) > 1.01 {
			t.Errorf("share %d moved from %g to %d", i, want, dist[i])
		}
	}
}

func TestRoundSharesFloatHandlesImprecision(t *testing.T) {
	// Shares that do not sum exactly to n (float noise) are rescaled.
	shares := []float64{3.3333333333, 3.3333333333, 3.3333333334}
	dist := RoundShares(shares, 10)
	if dist.Sum() != 10 {
		t.Errorf("sum = %d, want 10", dist.Sum())
	}
}

func TestRoundSharesDegenerate(t *testing.T) {
	if d := RoundShares(nil, 5); d != nil {
		t.Errorf("RoundShares(nil) = %v", d)
	}
	d := RoundShares([]float64{0, 0, 0}, 9)
	if d.Sum() != 9 {
		t.Errorf("all-zero shares: sum = %d, want 9", d.Sum())
	}
	if d[2] != 9 {
		t.Errorf("all-zero shares should all land on the root (last): %v", d)
	}
	d = RoundShares([]float64{math.NaN(), 5, math.Inf(1)}, 5)
	if d.Sum() != 5 {
		t.Errorf("NaN/Inf shares: sum = %d, want 5", d.Sum())
	}
}

func TestFloorAndFix(t *testing.T) {
	d := floorAndFix([]float64{1.9, 2.8, 0.3}, 5)
	if d.Sum() != 5 {
		t.Errorf("sum = %d, want 5", d.Sum())
	}
	// Largest fractions get the leftovers: floors are 1,2,0 (sum 3),
	// two leftovers go to indices 1 (.8) and 0 (.9).
	if d[0] != 2 || d[1] != 3 || d[2] != 0 {
		t.Errorf("d = %v, want [2 3 0]", d)
	}
}

// TestHeuristicReproducesPaperQuality mirrors the paper's Section 5.2
// anecdote: on the (linear) Table-1-like platform the heuristic's
// relative error versus the exact optimum is tiny.
func TestHeuristicReproducesPaperQuality(t *testing.T) {
	procs := []Processor{
		{Name: "caseb", Comm: cost.Linear{PerItem: 1.00e-5}, Comp: cost.Linear{PerItem: 0.004629}},
		{Name: "pellinore", Comm: cost.Linear{PerItem: 1.12e-5}, Comp: cost.Linear{PerItem: 0.009365}},
		{Name: "sekhmet", Comm: cost.Linear{PerItem: 1.70e-5}, Comp: cost.Linear{PerItem: 0.004885}},
		{Name: "seven", Comm: cost.Linear{PerItem: 2.10e-5}, Comp: cost.Linear{PerItem: 0.016156}},
		{Name: "merlin", Comm: cost.Linear{PerItem: 8.15e-5}, Comp: cost.Linear{PerItem: 0.003976}},
		{Name: "dinadan", Comm: cost.Zero, Comp: cost.Linear{PerItem: 0.009288}},
	}
	n := 20000
	h, err := Heuristic(procs, n)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Algorithm2(procs, n)
	if err != nil {
		t.Fatal(err)
	}
	relErr := (h.Makespan - opt.Makespan) / opt.Makespan
	if relErr < 0 {
		t.Fatalf("heuristic beat the exact optimum: %g < %g", h.Makespan, opt.Makespan)
	}
	if relErr > 1e-4 {
		t.Errorf("heuristic relative error %g, paper reports < 6e-6 at full scale", relErr)
	}
}

package cost

import (
	"math"
	"testing"
)

// Edge-case tests complementing cost_test.go: degenerate tables,
// extrapolation corners, and calibration pathologies.

func TestTableSingleEntry(t *testing.T) {
	tab := Table{Values: []float64{0}}
	if got := tab.Eval(1); got != 0 {
		t.Errorf("single-entry table Eval(1) = %g, want 0 (flat extrapolation)", got)
	}
	if got := tab.Eval(100); got != 0 {
		t.Errorf("single-entry table Eval(100) = %g, want 0", got)
	}
}

func TestTableEmptyEval(t *testing.T) {
	tab := Table{}
	for _, x := range []int{0, 1, 50} {
		if got := tab.Eval(x); got != 0 {
			t.Errorf("empty table Eval(%d) = %g, want 0", x, got)
		}
	}
}

func TestPiecewiseLinearEmptyEval(t *testing.T) {
	p := PiecewiseLinear{}
	if got := p.Eval(7); got != 0 {
		t.Errorf("empty piecewise Eval(7) = %g, want 0", got)
	}
}

func TestScaledZeroFactor(t *testing.T) {
	s := Scaled{F: Affine{Fixed: 3, PerItem: 2}, Factor: 0}
	if got := s.Eval(10); got != 0 {
		t.Errorf("zero-factor Scaled.Eval(10) = %g, want 0", got)
	}
}

func TestSumNested(t *testing.T) {
	inner := Sum{Terms: []Function{Linear{PerItem: 1}, Linear{PerItem: 2}}}
	outer := Sum{Terms: []Function{inner, Linear{PerItem: 3}}}
	if got := outer.Eval(2); got != 12 {
		t.Errorf("nested Sum.Eval(2) = %g, want 12", got)
	}
	if got := outer.Class(); got != LinearClass {
		t.Errorf("nested linear Sum class = %v, want linear", got)
	}
}

func TestCheckClassGeneralAlwaysPassesForValidCosts(t *testing.T) {
	quadratic := Func(func(x int) float64 { return float64(x * x) })
	if err := CheckClass(quadratic, General, 20, 1e-9); err != nil {
		t.Errorf("valid general function rejected: %v", err)
	}
}

func TestFitLinearAllZeroDurations(t *testing.T) {
	fit, err := FitLinear([]Sample{{X: 1, Seconds: 0}, {X: 5, Seconds: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if fit.PerItem != 0 {
		t.Errorf("zero-duration fit slope = %g, want 0", fit.PerItem)
	}
}

func TestFitLinearRejectsNaN(t *testing.T) {
	if _, err := FitLinear([]Sample{{X: 1, Seconds: math.NaN()}}); err == nil {
		t.Error("NaN duration accepted")
	}
	if _, err := FitAffine([]Sample{{X: 1, Seconds: math.Inf(1)}, {X: 2, Seconds: 1}}); err == nil {
		t.Error("Inf duration accepted")
	}
}

func TestFitAffineConstantData(t *testing.T) {
	// Identical durations at different sizes: a pure-overhead model.
	fit, err := FitAffine([]Sample{{X: 10, Seconds: 2}, {X: 1000, Seconds: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if fit.PerItem < 0 || fit.Fixed < 0 {
		t.Errorf("fit = %+v has negative coefficients", fit)
	}
	if math.Abs(fit.Eval(500)-2) > 0.1 {
		t.Errorf("constant-data fit predicts %g at 500, want ~2", fit.Eval(500))
	}
}

func TestTableFromSamplesSingleSize(t *testing.T) {
	tab, err := TableFromSamples([]Sample{{X: 4, Seconds: 8}, {X: 4, Seconds: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if got := tab.Eval(4); got != 9 {
		t.Errorf("averaged table Eval(4) = %g, want 9", got)
	}
	// Interpolation from the implicit origin.
	if got := tab.Eval(2); got != 4.5 {
		t.Errorf("interpolated Eval(2) = %g, want 4.5", got)
	}
}

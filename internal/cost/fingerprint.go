package cost

import (
	"hash/fnv"
	"math"
	"strconv"
	"strings"
)

// Fingerprint returns a canonical string identifying the exact numeric
// behaviour of f, and whether such a string exists. Two functions with
// equal fingerprints evaluate bit-identically at every item count, so
// fingerprints are safe keys for memoizing DP rows across solves (see
// core.Plan): reusing a row computed under an equal fingerprint cannot
// change a single bit of the result.
//
// Only the structural cost types of this package are fingerprintable.
// Opaque functions (Func, or any foreign implementation) return
// ("", false); callers must then fall back to a fresh solve, since two
// closures cannot be proven equal.
//
// Normalizations are applied only when they provably preserve every
// Eval result bit-for-bit: an Affine with a zero Fixed part
// fingerprints as the equivalent Linear (0 + a·x == a·x exactly in
// IEEE-754 for the non-negative values the cost model allows, and both
// types tabulate through the same closed form).
func Fingerprint(f Function) (string, bool) {
	switch cf := f.(type) {
	case Linear:
		return "lin(" + hexFloat(cf.PerItem) + ")", true
	case Affine:
		if cf.Fixed == 0 {
			return "lin(" + hexFloat(cf.PerItem) + ")", true
		}
		return "aff(" + hexFloat(cf.Fixed) + "," + hexFloat(cf.PerItem) + ")", true
	case Table:
		h := fnv.New64a()
		var buf [8]byte
		for _, v := range cf.Values {
			putUint64(buf[:], math.Float64bits(v))
			h.Write(buf[:])
		}
		inc := "g"
		if cf.Increasing {
			inc = "i"
		}
		return "tab(" + inc + "," + strconv.Itoa(len(cf.Values)) + "," +
			strconv.FormatUint(h.Sum64(), 16) + ")", true
	case PiecewiseLinear:
		h := fnv.New64a()
		var buf [8]byte
		for _, bp := range cf.Points {
			putUint64(buf[:], uint64(int64(bp.X)))
			h.Write(buf[:])
			putUint64(buf[:], math.Float64bits(bp.Y))
			h.Write(buf[:])
		}
		return "pwl(" + strconv.Itoa(len(cf.Points)) + "," +
			strconv.FormatUint(h.Sum64(), 16) + ")", true
	case Sum:
		parts := make([]string, len(cf.Terms))
		for i, t := range cf.Terms {
			fp, ok := Fingerprint(t)
			if !ok {
				return "", false
			}
			parts[i] = fp
		}
		return "sum(" + strings.Join(parts, ",") + ")", true
	case Scaled:
		fp, ok := Fingerprint(cf.F)
		if !ok {
			return "", false
		}
		return "scl(" + hexFloat(cf.Factor) + "," + fp + ")", true
	case Classified:
		fp, ok := Fingerprint(cf.F)
		if !ok {
			return "", false
		}
		return "cls(" + strconv.Itoa(int(cf.C)) + "," + fp + ")", true
	default:
		return "", false
	}
}

// hexFloat renders v exactly (hexadecimal mantissa, no rounding), so
// distinct float64 values never collide.
func hexFloat(v float64) string {
	return strconv.FormatFloat(v, 'x', -1, 64)
}

// putUint64 writes v little-endian into b[:8]; a local helper so the
// package keeps its tiny dependency footprint.
func putUint64(b []byte, v uint64) {
	_ = b[7]
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

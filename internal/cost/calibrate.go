package cost

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Sample is one calibration measurement: the observed cost of X items.
type Sample struct {
	// X is the number of items measured.
	X int
	// Seconds is the observed duration.
	Seconds float64
}

// FitLinear fits the model a*x to the samples by least squares through
// the origin and returns the resulting Linear function. At least one
// sample with X > 0 is required.
//
// This is how the paper's Table 1 constants are produced: "The values
// come from a series of benchmarks we performed on our application."
func FitLinear(samples []Sample) (Linear, error) {
	var sxx, sxy float64
	usable := 0
	for _, s := range samples {
		if s.X <= 0 {
			continue
		}
		if math.IsNaN(s.Seconds) || math.IsInf(s.Seconds, 0) {
			return Linear{}, fmt.Errorf("cost: sample (%d, %g) is not finite", s.X, s.Seconds)
		}
		x := float64(s.X)
		sxx += x * x
		sxy += x * s.Seconds
		usable++
	}
	if usable == 0 {
		return Linear{}, errors.New("cost: no usable samples (need X > 0)")
	}
	slope := sxy / sxx
	if slope < 0 {
		slope = 0
	}
	return Linear{PerItem: slope}, nil
}

// FitAffine fits the model c + a*x to the samples by ordinary least
// squares and clamps both coefficients to be non-negative (re-fitting
// the other coefficient when one clamps), so the result is a valid
// non-negative increasing cost function. At least two samples with
// distinct positive X are required.
func FitAffine(samples []Sample) (Affine, error) {
	var n, sx, sy, sxx, sxy float64
	distinct := map[int]bool{}
	for _, s := range samples {
		if s.X <= 0 {
			continue
		}
		if math.IsNaN(s.Seconds) || math.IsInf(s.Seconds, 0) {
			return Affine{}, fmt.Errorf("cost: sample (%d, %g) is not finite", s.X, s.Seconds)
		}
		x := float64(s.X)
		n++
		sx += x
		sy += s.Seconds
		sxx += x * x
		sxy += x * s.Seconds
		distinct[s.X] = true
	}
	if len(distinct) < 2 {
		return Affine{}, errors.New("cost: need samples at two distinct positive item counts")
	}
	det := n*sxx - sx*sx
	slope := (n*sxy - sx*sy) / det
	intercept := (sy*sxx - sx*sxy) / det
	if intercept < 0 {
		// Clamp the intercept and re-fit the slope through the origin.
		intercept = 0
		slope = sxy / sxx
	}
	if slope < 0 {
		// Degenerate decreasing data: fall back to a constant model.
		slope = 0
		intercept = sy / n
	}
	return Affine{Fixed: intercept, PerItem: slope}, nil
}

// FitResidual reports the root-mean-square residual of f against the
// samples, a goodness-of-fit measure for calibration campaigns.
func FitResidual(f Function, samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	var ss float64
	for _, s := range samples {
		d := f.Eval(s.X) - s.Seconds
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(samples)))
}

// TableFromSamples builds a Table cost function by sorting the samples,
// averaging duplicates, and interpolating the gaps linearly up to the
// largest measured X. The result is marked increasing only if the
// averaged measurements are monotone.
func TableFromSamples(samples []Sample) (Table, error) {
	if len(samples) == 0 {
		return Table{}, errors.New("cost: no samples")
	}
	maxX := 0
	sums := map[int]float64{}
	counts := map[int]int{}
	for _, s := range samples {
		if s.X < 0 {
			return Table{}, fmt.Errorf("cost: negative item count %d", s.X)
		}
		if math.IsNaN(s.Seconds) || math.IsInf(s.Seconds, 0) || s.Seconds < 0 {
			return Table{}, fmt.Errorf("cost: sample (%d, %g) is invalid", s.X, s.Seconds)
		}
		sums[s.X] += s.Seconds
		counts[s.X]++
		if s.X > maxX {
			maxX = s.X
		}
	}
	if maxX == 0 {
		return Table{}, errors.New("cost: all samples at X = 0")
	}
	xs := make([]int, 0, len(sums))
	for x := range sums {
		xs = append(xs, x)
	}
	sort.Ints(xs)

	values := make([]float64, maxX+1)
	// Known points (averaged).
	known := make(map[int]float64, len(xs))
	for _, x := range xs {
		known[x] = sums[x] / float64(counts[x])
	}
	known[0] = 0 // cost of zero items is zero by definition

	// Interpolate between consecutive known points.
	prevX, prevY := 0, 0.0
	for _, x := range xs {
		if x == 0 {
			continue
		}
		y := known[x]
		for i := prevX; i <= x; i++ {
			values[i] = interpolate(Breakpoint{X: prevX, Y: prevY}, Breakpoint{X: x, Y: y}, i)
		}
		prevX, prevY = x, y
	}

	increasing := true
	for i := 1; i < len(values); i++ {
		if values[i] < values[i-1] {
			increasing = false
			break
		}
	}
	return Table{Values: values, Increasing: increasing}, nil
}

// Package cost defines the communication and computation cost models used
// by the scatter load-balancing algorithms.
//
// The paper characterizes each processor Pi by two functions:
//
//	Tcomm(i, x): the time for Pi to receive x data items from the root,
//	Tcomp(i, x): the time for Pi to process x data items.
//
// The algorithms place different requirements on these functions:
//
//   - Algorithm 1 (basic dynamic program) only needs them to be
//     non-negative and null at x = 0.
//   - Algorithm 2 (optimized dynamic program) additionally needs them to
//     be increasing in x.
//   - The guaranteed heuristic needs them to be affine in x.
//   - The closed-form solver of Section 4 needs them to be linear in x.
//
// This package provides concrete implementations for each class plus
// combinators, property checks, and calibration helpers that fit an
// affine model to measured samples.
package cost

import (
	"errors"
	"fmt"
	"math"
)

// Function is a cost function mapping a number of data items to a
// duration in seconds. Implementations must return 0 for x <= 0 and a
// non-negative, finite value for x > 0.
type Function interface {
	// Eval returns the cost, in seconds, of x data items.
	Eval(x int) float64
}

// Class describes the analytic class of a cost function, from the most
// general to the most specific. More specific classes enable faster
// algorithms (see the package comment).
type Class int

const (
	// General marks a function only known to be non-negative.
	General Class = iota
	// Increasing marks a function known to be non-decreasing in x.
	Increasing
	// AffineClass marks a function of the form c + a*x (c, a >= 0).
	AffineClass
	// LinearClass marks a function of the form a*x (a >= 0).
	LinearClass
)

// String returns the lowercase name of the class.
func (c Class) String() string {
	switch c {
	case General:
		return "general"
	case Increasing:
		return "increasing"
	case AffineClass:
		return "affine"
	case LinearClass:
		return "linear"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Classifier is implemented by cost functions that know their own
// analytic class. Functions that do not implement it are treated as
// General.
type Classifier interface {
	Class() Class
}

// ClassOf reports the analytic class of f, defaulting to General when f
// does not implement Classifier.
func ClassOf(f Function) Class {
	if c, ok := f.(Classifier); ok {
		return c.Class()
	}
	return General
}

// Linear is the cost function a*x used throughout Section 4 of the
// paper, where the constant is called alpha (communication) or beta
// (computation), expressed in seconds per item.
type Linear struct {
	// PerItem is the cost, in seconds, of a single item.
	PerItem float64
}

// Eval returns PerItem*x, or 0 for non-positive x.
func (l Linear) Eval(x int) float64 {
	if x <= 0 {
		return 0
	}
	return l.PerItem * float64(x)
}

// Class reports LinearClass.
func (l Linear) Class() Class { return LinearClass }

// String renders the function as "a*x".
func (l Linear) String() string { return fmt.Sprintf("%g*x", l.PerItem) }

// Affine is the cost function c + a*x for x > 0 (and 0 at x = 0), the
// class required by the guaranteed heuristic of Section 3.3. The fixed
// part models, e.g., network latency or a process-startup overhead.
type Affine struct {
	// Fixed is the constant cost, in seconds, paid as soon as x > 0.
	Fixed float64
	// PerItem is the additional cost, in seconds, of each item.
	PerItem float64
}

// Eval returns Fixed + PerItem*x for x > 0, and 0 otherwise.
func (a Affine) Eval(x int) float64 {
	if x <= 0 {
		return 0
	}
	return a.Fixed + a.PerItem*float64(x)
}

// Class reports AffineClass, or LinearClass when Fixed is zero.
func (a Affine) Class() Class {
	if a.Fixed == 0 {
		return LinearClass
	}
	return AffineClass
}

// String renders the function as "c + a*x".
func (a Affine) String() string { return fmt.Sprintf("%g + %g*x", a.Fixed, a.PerItem) }

// Table is a cost function defined by explicit per-count values:
// Eval(x) = Values[x] for 0 <= x < len(Values). Evaluation beyond the
// table extrapolates linearly from the last two entries; this keeps the
// function total, which the dynamic programs require. A Table is the
// natural output of a measurement campaign where every block size of
// interest was benchmarked.
type Table struct {
	// Values holds the cost of 0, 1, 2, ... items. Values[0] should be 0.
	Values []float64
	// Increasing declares that the values are non-decreasing, enabling
	// Algorithm 2. It is validated by Validate, not enforced by Eval.
	Increasing bool
}

// Eval returns the tabulated cost, extrapolating linearly past the end
// of the table.
func (t Table) Eval(x int) float64 {
	if x <= 0 || len(t.Values) == 0 {
		return 0
	}
	if x < len(t.Values) {
		return t.Values[x]
	}
	// Linear extrapolation from the tail.
	last := len(t.Values) - 1
	if last == 0 {
		return t.Values[0]
	}
	slope := t.Values[last] - t.Values[last-1]
	if slope < 0 {
		slope = 0
	}
	return t.Values[last] + slope*float64(x-last)
}

// Class reports Increasing when the table was declared increasing, and
// General otherwise.
func (t Table) Class() Class {
	if t.Increasing {
		return Increasing
	}
	return General
}

// Validate checks the structural invariants of the table: a leading
// zero, non-negative finite entries, and monotonicity when declared.
func (t Table) Validate() error {
	if len(t.Values) == 0 {
		return errors.New("cost: empty table")
	}
	if t.Values[0] != 0 {
		return fmt.Errorf("cost: table value for 0 items is %g, want 0", t.Values[0])
	}
	prev := 0.0
	for i, v := range t.Values {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return fmt.Errorf("cost: table value %d is %g", i, v)
		}
		if t.Increasing && v < prev {
			return fmt.Errorf("cost: table declared increasing but value %d (%g) < value %d (%g)", i, v, i-1, prev)
		}
		prev = v
	}
	return nil
}

// Breakpoint is one vertex of a PiecewiseLinear cost function.
type Breakpoint struct {
	// X is the item count at which this vertex applies.
	X int
	// Y is the cost, in seconds, at X items.
	Y float64
}

// PiecewiseLinear interpolates linearly between breakpoints and
// extrapolates from the last segment. It models costs with regime
// changes, such as a message cost that jumps once the payload exceeds a
// router MTU or a compute cost that degrades when the working set falls
// out of cache. Breakpoints must be sorted by strictly increasing X.
type PiecewiseLinear struct {
	// Points holds the vertices, sorted by strictly increasing X. An
	// implicit vertex (0, 0) is assumed if the first point has X > 0.
	Points []Breakpoint
}

// Eval interpolates the cost of x items.
func (p PiecewiseLinear) Eval(x int) float64 {
	if x <= 0 || len(p.Points) == 0 {
		return 0
	}
	pts := p.Points
	// Implicit origin.
	prev := Breakpoint{X: 0, Y: 0}
	for _, bp := range pts {
		if x <= bp.X {
			return interpolate(prev, bp, x)
		}
		prev = bp
	}
	// Extrapolate from the last segment.
	if len(pts) >= 2 {
		return interpolate(pts[len(pts)-2], pts[len(pts)-1], x)
	}
	return interpolate(Breakpoint{}, pts[0], x)
}

func interpolate(a, b Breakpoint, x int) float64 {
	if b.X == a.X {
		return b.Y
	}
	t := float64(x-a.X) / float64(b.X-a.X)
	return a.Y + t*(b.Y-a.Y)
}

// Class reports Increasing when every segment is non-decreasing, and
// General otherwise.
func (p PiecewiseLinear) Class() Class {
	prevY := 0.0
	for _, bp := range p.Points {
		if bp.Y < prevY {
			return General
		}
		prevY = bp.Y
	}
	return Increasing
}

// Validate checks ordering and value sanity of the breakpoints.
func (p PiecewiseLinear) Validate() error {
	prevX := -1
	for i, bp := range p.Points {
		if bp.X <= prevX {
			return fmt.Errorf("cost: breakpoint %d has X=%d, not strictly greater than %d", i, bp.X, prevX)
		}
		if math.IsNaN(bp.Y) || math.IsInf(bp.Y, 0) || bp.Y < 0 {
			return fmt.Errorf("cost: breakpoint %d has Y=%g", i, bp.Y)
		}
		prevX = bp.X
	}
	if len(p.Points) == 0 {
		return errors.New("cost: piecewise-linear function without breakpoints")
	}
	return nil
}

// Sum is the pointwise sum of several cost functions. It models a cost
// with separable components, e.g. latency plus serialization plus a
// protocol overhead proportional to the number of packets.
type Sum struct {
	// Terms are the component functions; Eval adds their values.
	Terms []Function
}

// Eval returns the sum of the component costs.
func (s Sum) Eval(x int) float64 {
	total := 0.0
	for _, t := range s.Terms {
		total += t.Eval(x)
	}
	return total
}

// Class reports the weakest class among the terms (a sum of affine
// functions is affine, but a sum involving a general function is
// general).
func (s Sum) Class() Class {
	if len(s.Terms) == 0 {
		return LinearClass // identically zero
	}
	c := LinearClass
	for _, t := range s.Terms {
		tc := ClassOf(t)
		if tc < c {
			c = tc
		}
	}
	return c
}

// Scaled multiplies an underlying cost function by a constant factor.
// It models, e.g., a processor slowed by a known background load.
type Scaled struct {
	// F is the underlying cost function.
	F Function
	// Factor multiplies every cost; it must be non-negative.
	Factor float64
}

// Eval returns Factor * F.Eval(x).
func (s Scaled) Eval(x int) float64 { return s.Factor * s.F.Eval(x) }

// Class reports the class of the underlying function (scaling preserves
// linearity, affinity and monotonicity for non-negative factors).
func (s Scaled) Class() Class { return ClassOf(s.F) }

// Func adapts an ordinary function to the Function interface. The
// adapted function is treated as General unless wrapped in Classified.
type Func func(x int) float64

// Eval calls the adapted function for x > 0 and returns 0 otherwise.
func (f Func) Eval(x int) float64 {
	if x <= 0 {
		return 0
	}
	return f(x)
}

// Classified attaches an asserted class to an arbitrary cost function.
// The caller is responsible for the assertion being true; CheckClass can
// probe it empirically.
type Classified struct {
	// F is the underlying cost function.
	F Function
	// C is the asserted analytic class of F.
	C Class
}

// Eval evaluates the underlying function.
func (c Classified) Eval(x int) float64 { return c.F.Eval(x) }

// Class reports the asserted class.
func (c Classified) Class() Class { return c.C }

// Zero is the identically-zero cost function. It models a free resource,
// e.g. the root processor's communication to itself.
var Zero Function = Linear{PerItem: 0}

// CheckNonNegative probes f on 0..n and returns an error at the first
// negative, NaN or infinite value, or if f(0) != 0.
func CheckNonNegative(f Function, n int) error {
	if v := f.Eval(0); v != 0 {
		return fmt.Errorf("cost: f(0) = %g, want 0", v)
	}
	for x := 0; x <= n; x++ {
		v := f.Eval(x)
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return fmt.Errorf("cost: f(%d) = %g", x, v)
		}
	}
	return nil
}

// CheckIncreasing probes f on 0..n and returns an error at the first
// strict decrease.
func CheckIncreasing(f Function, n int) error {
	prev := f.Eval(0)
	for x := 1; x <= n; x++ {
		v := f.Eval(x)
		if v < prev {
			return fmt.Errorf("cost: f(%d) = %g < f(%d) = %g", x, v, x-1, prev)
		}
		prev = v
	}
	return nil
}

// CheckClass empirically verifies on 0..n that f behaves according to
// class c: non-negativity for General, monotonicity for Increasing, and
// exact second-difference flatness (within tol) for AffineClass and
// LinearClass. LinearClass additionally requires f(1) to be the exact
// slope of f on [0, n].
func CheckClass(f Function, c Class, n int, tol float64) error {
	if err := CheckNonNegative(f, n); err != nil {
		return err
	}
	if c >= Increasing {
		if err := CheckIncreasing(f, n); err != nil {
			return err
		}
	}
	if c >= AffineClass && n >= 3 {
		// Second differences of an affine function vanish for x >= 1.
		for x := 1; x+2 <= n; x++ {
			d2 := f.Eval(x+2) - 2*f.Eval(x+1) + f.Eval(x)
			if math.Abs(d2) > tol {
				return fmt.Errorf("cost: second difference at %d is %g, not affine within %g", x, d2, tol)
			}
		}
	}
	if c >= LinearClass && n >= 1 {
		slope := f.Eval(1)
		for x := 1; x <= n; x++ {
			want := slope * float64(x)
			if math.Abs(f.Eval(x)-want) > tol*math.Max(1, want) {
				return fmt.Errorf("cost: f(%d) = %g, linear model predicts %g", x, f.Eval(x), want)
			}
		}
	}
	return nil
}

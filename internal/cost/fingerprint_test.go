package cost

import "testing"

func fp(t *testing.T, f Function) string {
	t.Helper()
	s, ok := Fingerprint(f)
	if !ok {
		t.Fatalf("Fingerprint(%v) not available", f)
	}
	return s
}

// TestFingerprintDistinguishes checks that behaviourally different
// functions get different fingerprints and equal ones collide.
func TestFingerprintDistinguishes(t *testing.T) {
	distinct := []Function{
		Linear{PerItem: 1},
		Linear{PerItem: 1.0000000000000002}, // one ulp apart
		Affine{Fixed: 0.5, PerItem: 1},
		Affine{Fixed: 0.5, PerItem: 2},
		Table{Values: []float64{0, 1, 2}, Increasing: true},
		Table{Values: []float64{0, 1, 2}},
		Table{Values: []float64{0, 1, 3}, Increasing: true},
		PiecewiseLinear{Points: []Breakpoint{{X: 4, Y: 2}}},
		PiecewiseLinear{Points: []Breakpoint{{X: 5, Y: 2}}},
		Sum{Terms: []Function{Linear{PerItem: 1}, Linear{PerItem: 2}}},
		Scaled{F: Linear{PerItem: 1}, Factor: 3},
		Classified{F: Linear{PerItem: 1}, C: Increasing},
		Classified{F: Linear{PerItem: 1}, C: AffineClass},
	}
	seen := map[string]int{}
	for i, f := range distinct {
		s := fp(t, f)
		if j, dup := seen[s]; dup {
			t.Errorf("functions %d and %d share fingerprint %q", i, j, s)
		}
		seen[s] = i
	}
}

// TestFingerprintNormalizesZeroAffine pins the one normalization:
// Affine with a zero fixed part evaluates bit-identically to Linear, so
// they must share a fingerprint (their DP rows are interchangeable).
func TestFingerprintNormalizesZeroAffine(t *testing.T) {
	lin := fp(t, Linear{PerItem: 0.75})
	aff := fp(t, Affine{Fixed: 0, PerItem: 0.75})
	if lin != aff {
		t.Fatalf("Linear %q != Affine{Fixed: 0} %q", lin, aff)
	}
	for x := 0; x <= 100; x++ {
		if (Linear{PerItem: 0.75}).Eval(x) != (Affine{Fixed: 0, PerItem: 0.75}).Eval(x) {
			t.Fatalf("eval mismatch at %d", x)
		}
	}
}

// TestFingerprintStable pins equality across separately-built values.
func TestFingerprintStable(t *testing.T) {
	a := fp(t, Table{Values: []float64{0, 0.5, 1.5, 4}, Increasing: true})
	b := fp(t, Table{Values: []float64{0, 0.5, 1.5, 4}, Increasing: true})
	if a != b {
		t.Fatalf("%q != %q", a, b)
	}
}

// TestFingerprintOpaque checks that closures — alone or nested — refuse
// to fingerprint, since two closures cannot be proven equal.
func TestFingerprintOpaque(t *testing.T) {
	opaque := Func(func(x int) float64 { return float64(x) })
	cases := []Function{
		opaque,
		Sum{Terms: []Function{Linear{PerItem: 1}, opaque}},
		Scaled{F: opaque, Factor: 2},
		Classified{F: opaque, C: Increasing},
	}
	for i, f := range cases {
		if s, ok := Fingerprint(f); ok {
			t.Errorf("case %d: fingerprint %q for opaque function", i, s)
		}
	}
}

package cost

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestLinearEval(t *testing.T) {
	l := Linear{PerItem: 0.5}
	cases := []struct {
		x    int
		want float64
	}{
		{-3, 0}, {0, 0}, {1, 0.5}, {2, 1}, {10, 5}, {1000000, 500000},
	}
	for _, c := range cases {
		if got := l.Eval(c.x); got != c.want {
			t.Errorf("Linear.Eval(%d) = %g, want %g", c.x, got, c.want)
		}
	}
}

func TestLinearClass(t *testing.T) {
	if got := (Linear{PerItem: 1}).Class(); got != LinearClass {
		t.Errorf("Linear.Class() = %v, want linear", got)
	}
}

func TestAffineEval(t *testing.T) {
	a := Affine{Fixed: 2, PerItem: 0.25}
	if got := a.Eval(0); got != 0 {
		t.Errorf("Affine.Eval(0) = %g, want 0 (cost of nothing is nothing)", got)
	}
	if got := a.Eval(-1); got != 0 {
		t.Errorf("Affine.Eval(-1) = %g, want 0", got)
	}
	if got := a.Eval(4); got != 3 {
		t.Errorf("Affine.Eval(4) = %g, want 3", got)
	}
}

func TestAffineClassDegeneratesToLinear(t *testing.T) {
	if got := (Affine{Fixed: 0, PerItem: 3}).Class(); got != LinearClass {
		t.Errorf("zero-intercept affine class = %v, want linear", got)
	}
	if got := (Affine{Fixed: 1, PerItem: 3}).Class(); got != AffineClass {
		t.Errorf("affine class = %v, want affine", got)
	}
}

func TestTableEvalInRange(t *testing.T) {
	tab := Table{Values: []float64{0, 1, 3, 6}, Increasing: true}
	for x, want := range tab.Values {
		if got := tab.Eval(x); got != want {
			t.Errorf("Table.Eval(%d) = %g, want %g", x, got, want)
		}
	}
}

func TestTableEvalExtrapolates(t *testing.T) {
	tab := Table{Values: []float64{0, 1, 3}, Increasing: true}
	// Tail slope is 3-1 = 2, so Eval(4) = 3 + 2*2 = 7.
	if got := tab.Eval(4); got != 7 {
		t.Errorf("Table.Eval(4) = %g, want 7", got)
	}
	if got := tab.Eval(2); got != 3 {
		t.Errorf("Table.Eval(2) = %g, want 3", got)
	}
}

func TestTableEvalNeverExtrapolatesDownward(t *testing.T) {
	tab := Table{Values: []float64{0, 5, 4}}
	if got := tab.Eval(10); got < 4 {
		t.Errorf("Table.Eval(10) = %g, extrapolated below the last entry", got)
	}
}

func TestTableValidate(t *testing.T) {
	cases := []struct {
		name    string
		tab     Table
		wantErr bool
	}{
		{"valid", Table{Values: []float64{0, 1, 2}, Increasing: true}, false},
		{"empty", Table{}, true},
		{"nonzero origin", Table{Values: []float64{1, 2}}, true},  //scatterlint:ignore costinvariant invalid on purpose: Validate must reject it
		{"negative entry", Table{Values: []float64{0, -1}}, true}, //scatterlint:ignore costinvariant invalid on purpose: Validate must reject it
		{"nan entry", Table{Values: []float64{0, math.NaN()}}, true},
		{"declared increasing but is not", Table{Values: []float64{0, 2, 1}, Increasing: true}, true},
		{"non-monotone but not declared", Table{Values: []float64{0, 2, 1}}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.tab.Validate()
			if (err != nil) != c.wantErr {
				t.Errorf("Validate() error = %v, wantErr %v", err, c.wantErr)
			}
		})
	}
}

func TestPiecewiseLinearEval(t *testing.T) {
	p := PiecewiseLinear{Points: []Breakpoint{{X: 10, Y: 5}, {X: 20, Y: 25}}}
	cases := []struct {
		x    int
		want float64
	}{
		{0, 0},
		{5, 2.5}, // first segment from implicit origin
		{10, 5},  // breakpoint
		{15, 15}, // second segment
		{20, 25}, // breakpoint
		{30, 45}, // extrapolation with last slope 2
		{-1, 0},
	}
	for _, c := range cases {
		if got := p.Eval(c.x); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("PiecewiseLinear.Eval(%d) = %g, want %g", c.x, got, c.want)
		}
	}
}

func TestPiecewiseLinearSinglePoint(t *testing.T) {
	p := PiecewiseLinear{Points: []Breakpoint{{X: 4, Y: 8}}}
	if got := p.Eval(2); got != 4 {
		t.Errorf("Eval(2) = %g, want 4", got)
	}
	if got := p.Eval(8); got != 16 {
		t.Errorf("Eval(8) = %g, want 16 (extrapolation through origin)", got)
	}
}

func TestPiecewiseLinearValidate(t *testing.T) {
	if err := (PiecewiseLinear{}).Validate(); err == nil {
		t.Error("empty piecewise function validated")
	}
	bad := PiecewiseLinear{Points: []Breakpoint{{X: 5, Y: 1}, {X: 5, Y: 2}}}
	if err := bad.Validate(); err == nil {
		t.Error("duplicate X validated")
	}
	neg := PiecewiseLinear{Points: []Breakpoint{{X: 5, Y: -1}}} //scatterlint:ignore costinvariant invalid on purpose: Validate must reject it
	if err := neg.Validate(); err == nil {
		t.Error("negative Y validated")
	}
	ok := PiecewiseLinear{Points: []Breakpoint{{X: 5, Y: 1}, {X: 9, Y: 2}}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid piecewise function rejected: %v", err)
	}
}

func TestPiecewiseLinearClass(t *testing.T) {
	inc := PiecewiseLinear{Points: []Breakpoint{{X: 1, Y: 1}, {X: 2, Y: 2}}}
	if inc.Class() != Increasing {
		t.Error("monotone piecewise function not classified increasing")
	}
	dec := PiecewiseLinear{Points: []Breakpoint{{X: 1, Y: 2}, {X: 2, Y: 1}}}
	if dec.Class() != General {
		t.Error("non-monotone piecewise function classified increasing")
	}
}

func TestSumEvalAndClass(t *testing.T) {
	s := Sum{Terms: []Function{Linear{PerItem: 1}, Affine{Fixed: 2, PerItem: 3}}}
	if got := s.Eval(2); got != 2+2+6 {
		t.Errorf("Sum.Eval(2) = %g, want 10", got)
	}
	if got := s.Class(); got != AffineClass {
		t.Errorf("Sum.Class() = %v, want affine", got)
	}
	gen := Sum{Terms: []Function{Linear{PerItem: 1}, Func(func(x int) float64 { return float64(x * x) })}}
	if got := gen.Class(); got != General {
		t.Errorf("Sum with general term classified %v, want general", got)
	}
	empty := Sum{}
	if got := empty.Eval(5); got != 0 {
		t.Errorf("empty Sum.Eval(5) = %g, want 0", got)
	}
}

func TestScaled(t *testing.T) {
	s := Scaled{F: Linear{PerItem: 2}, Factor: 1.5}
	if got := s.Eval(4); got != 12 {
		t.Errorf("Scaled.Eval(4) = %g, want 12", got)
	}
	if got := s.Class(); got != LinearClass {
		t.Errorf("Scaled.Class() = %v, want linear", got)
	}
}

func TestFuncZeroGuard(t *testing.T) {
	f := Func(func(x int) float64 { return 42 })
	if got := f.Eval(0); got != 0 {
		t.Errorf("Func.Eval(0) = %g, want 0", got)
	}
	if got := f.Eval(3); got != 42 {
		t.Errorf("Func.Eval(3) = %g, want 42", got)
	}
}

func TestClassified(t *testing.T) {
	c := Classified{F: Func(func(x int) float64 { return float64(x) }), C: LinearClass}
	if got := ClassOf(c); got != LinearClass {
		t.Errorf("ClassOf(Classified) = %v, want linear", got)
	}
	if got := ClassOf(Func(func(x int) float64 { return 1 })); got != General {
		t.Errorf("ClassOf(raw Func) = %v, want general", got)
	}
}

func TestZero(t *testing.T) {
	for _, x := range []int{0, 1, 1000} {
		if got := Zero.Eval(x); got != 0 {
			t.Errorf("Zero.Eval(%d) = %g, want 0", x, got)
		}
	}
}

func TestCheckNonNegative(t *testing.T) {
	if err := CheckNonNegative(Linear{PerItem: 1}, 50); err != nil {
		t.Errorf("linear function failed non-negativity: %v", err)
	}
	bad := Func(func(x int) float64 { return float64(5 - x) })
	if err := CheckNonNegative(bad, 10); err == nil {
		t.Error("negative-going function passed non-negativity")
	}
}

func TestCheckIncreasing(t *testing.T) {
	if err := CheckIncreasing(Affine{Fixed: 1, PerItem: 2}, 50); err != nil {
		t.Errorf("affine function failed monotonicity: %v", err)
	}
	bumpy := Func(func(x int) float64 { return math.Abs(float64(x - 5)) })
	if err := CheckIncreasing(bumpy, 10); err == nil {
		t.Error("non-monotone function passed monotonicity")
	}
}

func TestCheckClass(t *testing.T) {
	if err := CheckClass(Linear{PerItem: 0.3}, LinearClass, 100, 1e-9); err != nil {
		t.Errorf("linear function failed its class check: %v", err)
	}
	if err := CheckClass(Affine{Fixed: 2, PerItem: 0.3}, AffineClass, 100, 1e-9); err != nil {
		t.Errorf("affine function failed its class check: %v", err)
	}
	if err := CheckClass(Affine{Fixed: 2, PerItem: 0.3}, LinearClass, 100, 1e-9); err == nil {
		t.Error("affine function with intercept passed the linear class check")
	}
	quadratic := Func(func(x int) float64 { return float64(x * x) })
	if err := CheckClass(quadratic, AffineClass, 20, 1e-9); err == nil {
		t.Error("quadratic passed the affine class check")
	}
}

// Property: linear and affine evaluation is exactly additive in the
// per-item coefficient and homogeneous in x.
func TestLinearAdditivityProperty(t *testing.T) {
	f := func(a float64, x uint8) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) {
			return true
		}
		a = math.Abs(math.Mod(a, 1e9))
		l := Linear{PerItem: a}
		return almostEqual(l.Eval(int(x))+l.Eval(int(x)), Linear{PerItem: 2 * a}.Eval(int(x)), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Sum.Eval distributes over its terms for random affine terms.
func TestSumDistributesProperty(t *testing.T) {
	f := func(c1, a1, c2, a2 float64, x uint8) bool {
		for _, v := range []float64{c1, a1, c2, a2} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		f1 := Affine{Fixed: math.Abs(math.Mod(c1, 1e9)), PerItem: math.Abs(math.Mod(a1, 1e9))}
		f2 := Affine{Fixed: math.Abs(math.Mod(c2, 1e9)), PerItem: math.Abs(math.Mod(a2, 1e9))}
		s := Sum{Terms: []Function{f1, f2}}
		return almostEqual(s.Eval(int(x)), f1.Eval(int(x))+f2.Eval(int(x)), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFitLinearRecoversSlope(t *testing.T) {
	truth := Linear{PerItem: 0.009288} // dinadan's beta from Table 1
	var samples []Sample
	for _, x := range []int{100, 500, 1000, 5000, 10000} {
		samples = append(samples, Sample{X: x, Seconds: truth.Eval(x)})
	}
	got, err := FitLinear(samples)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got.PerItem, truth.PerItem, 1e-12) {
		t.Errorf("FitLinear slope = %g, want %g", got.PerItem, truth.PerItem)
	}
}

func TestFitLinearRejectsEmpty(t *testing.T) {
	if _, err := FitLinear(nil); err == nil {
		t.Error("FitLinear(nil) succeeded")
	}
	if _, err := FitLinear([]Sample{{X: 0, Seconds: 1}}); err == nil {
		t.Error("FitLinear with only X=0 samples succeeded")
	}
}

func TestFitLinearNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	truth := 0.004885 // sekhmet's beta
	var samples []Sample
	for i := 0; i < 200; i++ {
		x := 1 + rng.Intn(10000)
		noise := 1 + 0.02*rng.NormFloat64()
		samples = append(samples, Sample{X: x, Seconds: truth * float64(x) * noise})
	}
	got, err := FitLinear(samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.PerItem-truth)/truth > 0.01 {
		t.Errorf("FitLinear slope = %g, want %g within 1%%", got.PerItem, truth)
	}
}

func TestFitAffineRecoversCoefficients(t *testing.T) {
	truth := Affine{Fixed: 0.8, PerItem: 1.12e-5} // pellinore-like link with latency
	var samples []Sample
	for _, x := range []int{10, 100, 1000, 10000, 100000} {
		samples = append(samples, Sample{X: x, Seconds: truth.Eval(x)})
	}
	got, err := FitAffine(samples)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got.Fixed, truth.Fixed, 1e-9) || !almostEqual(got.PerItem, truth.PerItem, 1e-9) {
		t.Errorf("FitAffine = %+v, want %+v", got, truth)
	}
}

func TestFitAffineClampsNegativeIntercept(t *testing.T) {
	// Data through the origin plus noise can produce a tiny negative
	// intercept; the fit must clamp it to keep the model a valid cost.
	samples := []Sample{{X: 1, Seconds: 0.9}, {X: 2, Seconds: 2.1}, {X: 3, Seconds: 3.0}}
	got, err := FitAffine(samples)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fixed < 0 {
		t.Errorf("FitAffine intercept = %g, want >= 0", got.Fixed)
	}
	if got.PerItem <= 0 {
		t.Errorf("FitAffine slope = %g, want > 0", got.PerItem)
	}
}

func TestFitAffineNeedsTwoDistinctX(t *testing.T) {
	samples := []Sample{{X: 5, Seconds: 1}, {X: 5, Seconds: 1.1}}
	if _, err := FitAffine(samples); err == nil {
		t.Error("FitAffine with a single distinct X succeeded")
	}
}

func TestFitResidual(t *testing.T) {
	f := Linear{PerItem: 1}
	samples := []Sample{{X: 1, Seconds: 1}, {X: 2, Seconds: 2}}
	if got := FitResidual(f, samples); got != 0 {
		t.Errorf("FitResidual on exact fit = %g, want 0", got)
	}
	samples = []Sample{{X: 1, Seconds: 2}} // off by 1
	if got := FitResidual(f, samples); !almostEqual(got, 1, 1e-12) {
		t.Errorf("FitResidual = %g, want 1", got)
	}
	if got := FitResidual(f, nil); got != 0 {
		t.Errorf("FitResidual with no samples = %g, want 0", got)
	}
}

func TestTableFromSamples(t *testing.T) {
	samples := []Sample{{X: 2, Seconds: 4}, {X: 4, Seconds: 8}, {X: 4, Seconds: 12}}
	tab, err := TableFromSamples(samples)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Values) != 5 {
		t.Fatalf("table length = %d, want 5", len(tab.Values))
	}
	// X=4 averages to 10; X=2 stays 4; X=1 interpolates to 2, X=3 to 7.
	want := []float64{0, 2, 4, 7, 10}
	for i, w := range want {
		if !almostEqual(tab.Values[i], w, 1e-12) {
			t.Errorf("table[%d] = %g, want %g", i, tab.Values[i], w)
		}
	}
	if !tab.Increasing {
		t.Error("monotone table not marked increasing")
	}
}

func TestTableFromSamplesRejectsBadInput(t *testing.T) {
	if _, err := TableFromSamples(nil); err == nil {
		t.Error("empty sample set accepted")
	}
	if _, err := TableFromSamples([]Sample{{X: -1, Seconds: 1}}); err == nil {
		t.Error("negative X accepted")
	}
	if _, err := TableFromSamples([]Sample{{X: 0, Seconds: 0}}); err == nil {
		t.Error("only-zero samples accepted")
	}
	if _, err := TableFromSamples([]Sample{{X: 1, Seconds: math.Inf(1)}}); err == nil {
		t.Error("infinite duration accepted")
	}
}

func TestTableFromSamplesNonMonotone(t *testing.T) {
	samples := []Sample{{X: 1, Seconds: 5}, {X: 2, Seconds: 3}}
	tab, err := TableFromSamples(samples)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Increasing {
		t.Error("non-monotone measurements marked increasing")
	}
}

// Property: FitAffine on exactly affine data recovers the model for any
// non-negative coefficients.
func TestFitAffineExactProperty(t *testing.T) {
	f := func(c, a float64) bool {
		if math.IsNaN(c) || math.IsInf(c, 0) || math.IsNaN(a) || math.IsInf(a, 0) {
			return true
		}
		c, a = math.Abs(math.Mod(c, 1e6)), math.Abs(math.Mod(a, 1e3))
		truth := Affine{Fixed: c, PerItem: a}
		samples := []Sample{
			{X: 1, Seconds: truth.Eval(1)},
			{X: 10, Seconds: truth.Eval(10)},
			{X: 100, Seconds: truth.Eval(100)},
		}
		got, err := FitAffine(samples)
		if err != nil {
			return false
		}
		return almostEqual(got.Fixed, c, 1e-6) && almostEqual(got.PerItem, a, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

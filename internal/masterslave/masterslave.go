// Package masterslave implements the dynamic load-balancing baseline
// the paper's related work contrasts with (Section 6): a master/worker
// scheduler where idle workers request fixed-size chunks of the data
// set, as in self-adjusting master-worker frameworks (Heymann et al.)
// and the MW library. The paper's argument for its *static* approach is
// that "the dynamic load evaluation and data redistribution make the
// execution suffer from overheads that can be avoided with a static
// approach" — this package makes that trade-off measurable.
//
// The simulation uses the same hardware model as the rest of the
// repository: the master is single-port (one chunk transfer at a
// time), a worker computes its chunk and then requests the next one
// (the request itself costs a configurable per-message overhead), and
// CPU load peaks can be injected per worker.
package masterslave

import (
	"container/heap"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/simgrid"
)

// Config describes one master/worker run.
type Config struct {
	// Procs are the workers, root last (the root's CPU also works:
	// the master hands itself chunks at zero transfer cost, matching
	// the static model's free root link).
	Procs []core.Processor
	// Items is the total number of data items.
	Items int
	// ChunkSize is the number of items handed out per request. It
	// trades scheduling granularity (small chunks adapt better)
	// against communication overhead (each chunk pays the request
	// overhead and the stream restart).
	ChunkSize int
	// RequestOverhead is the time, in seconds, a worker's chunk
	// request occupies the master before the transfer starts (the
	// "dynamic load evaluation and data redistribution" overhead).
	RequestOverhead float64
	// CPULoad injects background-load windows per processor name, as
	// in simgrid.
	CPULoad map[string][]simgrid.RateWindow
}

// WorkerStats summarizes one worker's run.
type WorkerStats struct {
	// Name is the worker's processor name.
	Name string
	// Items counts the data items it processed.
	Items int
	// Chunks counts the chunk requests it made.
	Chunks int
	// Finish is the time it completed its last chunk.
	Finish float64
}

// Result is the outcome of a master/worker run.
type Result struct {
	// Makespan is the completion time of the last chunk.
	Makespan float64
	// Workers holds per-worker statistics, in processor order.
	Workers []WorkerStats
	// MasterBusy is the total time the master's port spent serving
	// requests and transfers.
	MasterBusy float64
}

// workerEvent orders workers by the time they become idle.
type workerEvent struct {
	at     float64
	worker int
	seq    int
}

type eventHeap []workerEvent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(workerEvent)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Run simulates the dynamic scheduler and returns its result.
func Run(cfg Config) (Result, error) {
	if err := core.ValidateProcessors(cfg.Procs); err != nil {
		return Result{}, err
	}
	if cfg.Items < 0 {
		return Result{}, fmt.Errorf("masterslave: negative item count %d", cfg.Items)
	}
	if cfg.ChunkSize <= 0 {
		return Result{}, errors.New("masterslave: chunk size must be positive")
	}
	if cfg.RequestOverhead < 0 {
		return Result{}, errors.New("masterslave: negative request overhead")
	}

	p := len(cfg.Procs)
	cpus := make([]*simgrid.Resource, p)
	res := Result{Workers: make([]WorkerStats, p)}
	for i, pr := range cfg.Procs {
		cpus[i] = &simgrid.Resource{Name: pr.Name + "/cpu"}
		for _, w := range cfg.CPULoad[pr.Name] {
			if err := cpus[i].AddWindow(w); err != nil {
				return Result{}, err
			}
		}
		res.Workers[i].Name = pr.Name
	}

	// All workers request at time 0; the master serves requests in
	// arrival order (FIFO; ties by worker index, i.e. rank order like
	// the MPICH scatter).
	var idle eventHeap
	seq := 0
	for w := 0; w < p; w++ {
		heap.Push(&idle, workerEvent{at: 0, worker: w, seq: seq})
		seq++
	}

	remaining := cfg.Items
	masterFree := 0.0
	for remaining > 0 {
		ev := heap.Pop(&idle).(workerEvent)
		w := ev.worker
		chunk := cfg.ChunkSize
		if chunk > remaining {
			chunk = remaining
		}
		remaining -= chunk

		// The master handles the request (serialized port): overhead
		// plus the chunk transfer over the worker's link.
		start := ev.at
		if masterFree > start {
			start = masterFree
		}
		transferEnd := start + cfg.RequestOverhead + cfg.Procs[w].Comm.Eval(chunk)
		res.MasterBusy += transferEnd - start
		masterFree = transferEnd

		// The worker computes the chunk on its (possibly loaded) CPU.
		compEnd := cpus[w].FinishTime(transferEnd, cfg.Procs[w].Comp.Eval(chunk))
		res.Workers[w].Items += chunk
		res.Workers[w].Chunks++
		res.Workers[w].Finish = compEnd
		if compEnd > res.Makespan {
			res.Makespan = compEnd
		}

		heap.Push(&idle, workerEvent{at: compEnd, worker: w, seq: seq})
		seq++
	}
	return res, nil
}

// Sweep runs the scheduler across several chunk sizes and returns the
// best result and its chunk size.
func Sweep(cfg Config, chunkSizes []int) (best Result, bestChunk int, err error) {
	if len(chunkSizes) == 0 {
		return Result{}, 0, errors.New("masterslave: no chunk sizes")
	}
	first := true
	for _, cs := range chunkSizes {
		c := cfg
		c.ChunkSize = cs
		r, err := Run(c)
		if err != nil {
			return Result{}, 0, err
		}
		if first || r.Makespan < best.Makespan {
			best, bestChunk = r, cs
			first = false
		}
	}
	return best, bestChunk, nil
}

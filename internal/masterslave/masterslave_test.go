package masterslave

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/platform"
	"repro/internal/simgrid"
)

func workers3() []core.Processor {
	return []core.Processor{
		{Name: "w1", Comm: cost.Linear{PerItem: 0.1}, Comp: cost.Linear{PerItem: 1}},
		{Name: "w2", Comm: cost.Linear{PerItem: 0.1}, Comp: cost.Linear{PerItem: 2}},
		{Name: "root", Comm: cost.Zero, Comp: cost.Linear{PerItem: 1}},
	}
}

func TestRunProcessesEverything(t *testing.T) {
	res, err := Run(Config{Procs: workers3(), Items: 100, ChunkSize: 7})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, w := range res.Workers {
		total += w.Items
	}
	if total != 100 {
		t.Errorf("processed %d items, want 100", total)
	}
	if res.Makespan <= 0 {
		t.Error("zero makespan for real work")
	}
}

func TestRunFasterWorkerGetsMoreChunks(t *testing.T) {
	res, err := Run(Config{Procs: workers3(), Items: 300, ChunkSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	// w1 computes twice as fast as w2, so it should grab roughly
	// twice the chunks — that is the self-balancing property.
	if res.Workers[0].Items <= res.Workers[1].Items {
		t.Errorf("fast worker got %d items, slow worker %d", res.Workers[0].Items, res.Workers[1].Items)
	}
}

func TestRunSingleChunkDegeneratesToOneWorker(t *testing.T) {
	res, err := Run(Config{Procs: workers3(), Items: 10, ChunkSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	served := 0
	for _, w := range res.Workers {
		if w.Items > 0 {
			served++
		}
	}
	if served != 1 {
		t.Errorf("%d workers served for a single chunk", served)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{Procs: nil, Items: 10, ChunkSize: 1}); err == nil {
		t.Error("no processors accepted")
	}
	if _, err := Run(Config{Procs: workers3(), Items: -1, ChunkSize: 1}); err == nil {
		t.Error("negative items accepted")
	}
	if _, err := Run(Config{Procs: workers3(), Items: 10, ChunkSize: 0}); err == nil {
		t.Error("zero chunk size accepted")
	}
	if _, err := Run(Config{Procs: workers3(), Items: 10, ChunkSize: 1, RequestOverhead: -1}); err == nil {
		t.Error("negative overhead accepted")
	}
}

func TestRunZeroItems(t *testing.T) {
	res, err := Run(Config{Procs: workers3(), Items: 0, ChunkSize: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 0 {
		t.Errorf("makespan = %g for zero items", res.Makespan)
	}
}

func TestRequestOverheadHurtsSmallChunks(t *testing.T) {
	base := Config{Procs: workers3(), Items: 200, RequestOverhead: 0.5}
	small := base
	small.ChunkSize = 1
	large := base
	large.ChunkSize = 50
	rs, err := Run(small)
	if err != nil {
		t.Fatal(err)
	}
	rl, err := Run(large)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Makespan <= rl.Makespan {
		t.Errorf("chunk=1 (%g) should pay more overhead than chunk=50 (%g)", rs.Makespan, rl.Makespan)
	}
}

// TestStaticBeatsDynamicOnCalibratedGrid is the paper's §6 argument:
// with accurate cost knowledge, the static balanced scatter avoids the
// dynamic scheme's overheads.
func TestStaticBeatsDynamicOnCalibratedGrid(t *testing.T) {
	procs, err := platform.Table1().ProcessorsOrdered(platform.OrderDescendingBandwidth)
	if err != nil {
		t.Fatal(err)
	}
	const n = 100000
	static, err := core.Heuristic(procs, n)
	if err != nil {
		t.Fatal(err)
	}
	dynamic, _, err := Sweep(Config{
		Procs:           procs,
		Items:           n,
		RequestOverhead: 0.01, // 10 ms per request round-trip
	}, []int{100, 500, 2000, 10000})
	if err != nil {
		t.Fatal(err)
	}
	if static.Makespan >= dynamic.Makespan {
		t.Errorf("static %g not better than dynamic %g on a calibrated grid",
			static.Makespan, dynamic.Makespan)
	}
}

// TestDynamicAdaptsToUnknownLoadPeak is the flip side: when a worker
// unexpectedly slows down, the dynamic scheme routes work away from it
// while the static distribution is stuck.
func TestDynamicAdaptsToUnknownLoadPeak(t *testing.T) {
	procs, err := platform.Table1().ProcessorsOrdered(platform.OrderDescendingBandwidth)
	if err != nil {
		t.Fatal(err)
	}
	const n = 100000
	// caseb is nearly dead for the whole run, unbeknownst to the
	// static balancer.
	load := map[string][]simgrid.RateWindow{
		"caseb": {{Start: 0, End: 1e9, Factor: 0.05}},
	}
	static, err := core.Heuristic(procs, n)
	if err != nil {
		t.Fatal(err)
	}
	tl, err := simgrid.Run(simgrid.Config{Procs: procs, Dist: static.Distribution, CPULoad: load})
	if err != nil {
		t.Fatal(err)
	}
	dynamic, err := Run(Config{
		Procs:           procs,
		Items:           n,
		ChunkSize:       1000,
		RequestOverhead: 0.01,
		CPULoad:         load,
	})
	if err != nil {
		t.Fatal(err)
	}
	if dynamic.Makespan >= tl.Makespan {
		t.Errorf("dynamic %g not better than blind static %g under an unexpected load peak",
			dynamic.Makespan, tl.Makespan)
	}
}

func TestSweepPicksBestChunk(t *testing.T) {
	cfg := Config{Procs: workers3(), Items: 500, RequestOverhead: 0.2}
	best, chunk, err := Sweep(cfg, []int{1, 10, 100})
	if err != nil {
		t.Fatal(err)
	}
	for _, cs := range []int{1, 10, 100} {
		c := cfg
		c.ChunkSize = cs
		r, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		if r.Makespan < best.Makespan-1e-9 {
			t.Errorf("sweep missed chunk %d (%g < %g at chunk %d)", cs, r.Makespan, best.Makespan, chunk)
		}
	}
	if _, _, err := Sweep(cfg, nil); err == nil {
		t.Error("empty sweep accepted")
	}
}

func TestMasterBusyAccounting(t *testing.T) {
	res, err := Run(Config{Procs: workers3(), Items: 30, ChunkSize: 10, RequestOverhead: 1})
	if err != nil {
		t.Fatal(err)
	}
	// 3 chunks, each with 1s overhead plus its transfer time.
	if res.MasterBusy < 3 {
		t.Errorf("master busy %g, want at least the 3s of request overheads", res.MasterBusy)
	}
	chunks := 0
	for _, w := range res.Workers {
		chunks += w.Chunks
	}
	if chunks != 3 {
		t.Errorf("%d chunks, want 3", chunks)
	}
	if math.IsNaN(res.Makespan) {
		t.Error("NaN makespan")
	}
}

// Package schedule builds per-processor timelines of a scatter
// operation followed by a computation phase under the paper's
// single-port model (Section 2.3): the root serializes its sends in
// rank order, so each processor idles until every predecessor has been
// served, then receives, then computes.
//
// A Timeline is the analytic realization of Eq. (1); it carries the
// per-processor idle/receive/compute segments that the paper's Figures
// 1-4 plot, plus derived metrics (makespan, imbalance, stair area).
package schedule

import (
	"fmt"

	"repro/internal/core"
)

// Segment is a half-open time interval [Start, End) in seconds.
type Segment struct {
	// Start and End bound the interval.
	Start, End float64
}

// Duration returns End - Start.
func (s Segment) Duration() float64 { return s.End - s.Start }

// ProcTimeline is the activity of one processor during the operation.
type ProcTimeline struct {
	// Name is the processor's name.
	Name string
	// Items is the number of data items the processor received.
	Items int
	// Recv is the interval during which the processor receives its
	// share from the root. Recv.Start is also the processor's idle
	// time: the paper's "stair effect" (Figure 1).
	Recv Segment
	// Comp is the interval during which the processor computes.
	Comp Segment
}

// Finish returns the processor's completion time (Eq. 1).
func (p ProcTimeline) Finish() float64 { return p.Comp.End }

// Idle returns the time the processor spends waiting before its
// reception begins.
func (p ProcTimeline) Idle() float64 { return p.Recv.Start }

// CommTime returns the duration of the processor's receive phase.
func (p ProcTimeline) CommTime() float64 { return p.Recv.Duration() }

// CompTime returns the duration of the processor's compute phase.
func (p ProcTimeline) CompTime() float64 { return p.Comp.Duration() }

// Timeline is the complete schedule of a scatter+compute run.
type Timeline struct {
	// Procs holds one timeline per processor, in service order
	// (root last).
	Procs []ProcTimeline
	// Makespan is the overall completion time (Eq. 2).
	Makespan float64
}

// Build computes the analytic timeline of dist over procs: processor i
// starts receiving when processor i-1 has been served, receives for
// Tcomm(i, ni), then computes for Tcomp(i, ni).
func Build(procs []core.Processor, dist core.Distribution) (Timeline, error) {
	if len(procs) != len(dist) {
		return Timeline{}, fmt.Errorf("schedule: %d processors but %d shares", len(procs), len(dist))
	}
	tl := Timeline{Procs: make([]ProcTimeline, len(procs))}
	now := 0.0
	for i, pr := range procs {
		ni := dist[i]
		recvStart := now
		recvEnd := recvStart + pr.Comm.Eval(ni)
		compEnd := recvEnd + pr.Comp.Eval(ni)
		tl.Procs[i] = ProcTimeline{
			Name:  pr.Name,
			Items: ni,
			Recv:  Segment{Start: recvStart, End: recvEnd},
			Comp:  Segment{Start: recvEnd, End: compEnd},
		}
		if compEnd > tl.Makespan {
			tl.Makespan = compEnd
		}
		now = recvEnd // single port: the next send starts here
	}
	return tl, nil
}

// FinishTimes extracts every processor's completion time.
func (t Timeline) FinishTimes() []float64 {
	out := make([]float64, len(t.Procs))
	for i, p := range t.Procs {
		out[i] = p.Finish()
	}
	return out
}

// EarliestFinish returns the smallest completion time, the number the
// paper quotes together with the latest one ("the earliest processor
// finishing after 259 s and the latest after 853 s").
func (t Timeline) EarliestFinish() float64 {
	if len(t.Procs) == 0 {
		return 0
	}
	min := t.Procs[0].Finish()
	for _, p := range t.Procs[1:] {
		if f := p.Finish(); f < min {
			min = f
		}
	}
	return min
}

// LatestFinish returns the largest completion time (the makespan).
func (t Timeline) LatestFinish() float64 { return t.Makespan }

// Imbalance returns (latest-earliest)/latest, the paper's
// load-imbalance measure.
func (t Timeline) Imbalance() float64 {
	if t.Makespan == 0 {
		return 0
	}
	return (t.LatestFinish() - t.EarliestFinish()) / t.LatestFinish()
}

// StairArea integrates each processor's idle time before its reception
// begins — the "surface of the bottom area delimited by the dashed
// line" the paper uses to explain why the ascending-bandwidth ordering
// of Figure 4 loses time.
func (t Timeline) StairArea() float64 {
	total := 0.0
	for _, p := range t.Procs {
		total += p.Idle()
	}
	return total
}

// TotalCommTime sums every processor's receive duration; because the
// root's port is serialized, this is also the time the root spends
// sending.
func (t Timeline) TotalCommTime() float64 {
	total := 0.0
	for _, p := range t.Procs {
		total += p.CommTime()
	}
	return total
}

// TotalCompTime sums every processor's compute duration.
func (t Timeline) TotalCompTime() float64 {
	total := 0.0
	for _, p := range t.Procs {
		total += p.CompTime()
	}
	return total
}

// Utilization returns the fraction of the p*makespan time-area spent
// computing — a whole-platform efficiency measure.
func (t Timeline) Utilization() float64 {
	if t.Makespan == 0 || len(t.Procs) == 0 {
		return 0
	}
	return t.TotalCompTime() / (t.Makespan * float64(len(t.Procs)))
}

package schedule

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
)

func procs4() []core.Processor {
	return []core.Processor{
		{Name: "P1", Comm: cost.Linear{PerItem: 1}, Comp: cost.Linear{PerItem: 2}},
		{Name: "P2", Comm: cost.Linear{PerItem: 2}, Comp: cost.Linear{PerItem: 1}},
		{Name: "P3", Comm: cost.Linear{PerItem: 3}, Comp: cost.Linear{PerItem: 3}},
		{Name: "P4-root", Comm: cost.Zero, Comp: cost.Linear{PerItem: 2}},
	}
}

func TestBuildHandComputed(t *testing.T) {
	tl, err := Build(procs4(), core.Distribution{2, 2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	// P1: recv [0,2), comp [2,6)
	// P2: recv [2,6), comp [6,8)
	// P3: recv [6,12), comp [12,18)
	// P4: recv [12,12), comp [12,16)
	want := []ProcTimeline{
		{Name: "P1", Items: 2, Recv: Segment{0, 2}, Comp: Segment{2, 6}},
		{Name: "P2", Items: 2, Recv: Segment{2, 6}, Comp: Segment{6, 8}},
		{Name: "P3", Items: 2, Recv: Segment{6, 12}, Comp: Segment{12, 18}},
		{Name: "P4-root", Items: 2, Recv: Segment{12, 12}, Comp: Segment{12, 16}},
	}
	for i, w := range want {
		if tl.Procs[i] != w {
			t.Errorf("proc %d = %+v, want %+v", i, tl.Procs[i], w)
		}
	}
	if tl.Makespan != 18 {
		t.Errorf("makespan = %g, want 18", tl.Makespan)
	}
	if tl.EarliestFinish() != 6 {
		t.Errorf("earliest = %g, want 6", tl.EarliestFinish())
	}
	if tl.LatestFinish() != 18 {
		t.Errorf("latest = %g, want 18", tl.LatestFinish())
	}
}

func TestBuildMatchesCoreFinishTimes(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for trial := 0; trial < 25; trial++ {
		p := 1 + rng.Intn(6)
		procs := make([]core.Processor, p)
		dist := make(core.Distribution, p)
		for i := range procs {
			procs[i] = core.Processor{
				Name: "x",
				Comm: cost.Affine{Fixed: rng.Float64(), PerItem: rng.Float64()},
				Comp: cost.Affine{Fixed: rng.Float64(), PerItem: rng.Float64()},
			}
			dist[i] = rng.Intn(50)
		}
		tl, err := Build(procs, dist)
		if err != nil {
			t.Fatal(err)
		}
		want := core.FinishTimes(procs, dist)
		got := tl.FinishTimes()
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-12 {
				t.Fatalf("trial %d proc %d: timeline finish %g != Eq.(1) %g", trial, i, got[i], want[i])
			}
		}
		if math.Abs(tl.Makespan-core.Makespan(procs, dist)) > 1e-12 {
			t.Fatalf("trial %d: makespan mismatch", trial)
		}
	}
}

func TestBuildShareMismatch(t *testing.T) {
	if _, err := Build(procs4(), core.Distribution{1, 2}); err == nil {
		t.Error("mismatched distribution accepted")
	}
}

func TestSegmentsAreContiguous(t *testing.T) {
	tl, err := Build(procs4(), core.Distribution{3, 1, 0, 4})
	if err != nil {
		t.Fatal(err)
	}
	prevRecvEnd := 0.0
	for i, p := range tl.Procs {
		if p.Recv.Start != prevRecvEnd {
			t.Errorf("proc %d reception starts at %g, previous send ended at %g", i, p.Recv.Start, prevRecvEnd)
		}
		if p.Comp.Start != p.Recv.End {
			t.Errorf("proc %d computes at %g, reception ended at %g", i, p.Comp.Start, p.Recv.End)
		}
		prevRecvEnd = p.Recv.End
	}
}

func TestZeroShareProcessor(t *testing.T) {
	tl, err := Build(procs4(), core.Distribution{0, 4, 0, 4})
	if err != nil {
		t.Fatal(err)
	}
	p0 := tl.Procs[0]
	if p0.Recv.Duration() != 0 || p0.Comp.Duration() != 0 {
		t.Errorf("zero-share processor has nonzero activity: %+v", p0)
	}
	if p0.Finish() != 0 {
		t.Errorf("zero-share processor finishes at %g", p0.Finish())
	}
}

func TestIdleAndStairArea(t *testing.T) {
	tl, err := Build(procs4(), core.Distribution{2, 2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	// Idle times: 0, 2, 6, 12.
	wantIdle := []float64{0, 2, 6, 12}
	for i, w := range wantIdle {
		if got := tl.Procs[i].Idle(); got != w {
			t.Errorf("idle[%d] = %g, want %g", i, got, w)
		}
	}
	if got := tl.StairArea(); got != 20 {
		t.Errorf("stair area = %g, want 20", got)
	}
}

func TestStairAreaGrowsWithBadOrdering(t *testing.T) {
	// Putting the slowest link first grows the stair area: everyone
	// behind it waits longer. This is the Figure 3 vs Figure 4 story.
	good := procs4() // ordered by increasing comm cost already
	bad := []core.Processor{good[2], good[1], good[0], good[3]}
	dist := core.Distribution{2, 2, 2, 2}
	tlGood, err := Build(good, dist)
	if err != nil {
		t.Fatal(err)
	}
	tlBad, err := Build(bad, core.Distribution{2, 2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if tlBad.StairArea() <= tlGood.StairArea() {
		t.Errorf("bad ordering stair area %g not larger than good %g",
			tlBad.StairArea(), tlGood.StairArea())
	}
}

func TestTotalsAndUtilization(t *testing.T) {
	tl, err := Build(procs4(), core.Distribution{2, 2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := tl.TotalCommTime(); got != 12 {
		t.Errorf("total comm = %g, want 12", got)
	}
	if got := tl.TotalCompTime(); got != 4+2+6+4 {
		t.Errorf("total comp = %g, want 16", got)
	}
	want := 16.0 / (18 * 4)
	if got := tl.Utilization(); math.Abs(got-want) > 1e-12 {
		t.Errorf("utilization = %g, want %g", got, want)
	}
}

func TestImbalance(t *testing.T) {
	tl, err := Build(procs4(), core.Distribution{2, 2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	want := (18.0 - 6.0) / 18.0
	if got := tl.Imbalance(); math.Abs(got-want) > 1e-12 {
		t.Errorf("imbalance = %g, want %g", got, want)
	}
}

func TestEmptyTimeline(t *testing.T) {
	tl, err := Build(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tl.Makespan != 0 || tl.EarliestFinish() != 0 || tl.Imbalance() != 0 || tl.Utilization() != 0 {
		t.Errorf("empty timeline has nonzero metrics: %+v", tl)
	}
}

func TestBalancedTimelineNearZeroImbalance(t *testing.T) {
	procs := procs4()
	res, err := core.Algorithm2(procs, 200)
	if err != nil {
		t.Fatal(err)
	}
	tl, err := Build(procs, res.Distribution)
	if err != nil {
		t.Fatal(err)
	}
	// With a balanced distribution the spread among *participating*
	// processors should be small (pruned zero-share processors finish
	// immediately and do not count — here P3's link is slow enough
	// that the optimum drops it, per Theorem 2).
	min, max := math.Inf(1), 0.0
	for _, p := range tl.Procs {
		if p.Items == 0 {
			continue
		}
		f := p.Finish()
		if f < min {
			min = f
		}
		if f > max {
			max = f
		}
	}
	if (max-min)/max > 0.1 {
		t.Errorf("balanced imbalance among workers = %g", (max-min)/max)
	}
}

// Package chaos is the end-to-end harness hardening the fault-tolerant
// runtime: it generates seeded random fault schedules — including
// crashes of the serving root mid-round — runs a full
// scatter→compute→gather pipeline under them, and machine-checks the
// recovery invariants:
//
//   - exactly-once: every input item is computed and lands in the
//     output exactly once (the delivery ledger covers [0, n) with no
//     overlap after every scatter, and the merged output mask fills
//     completely);
//   - equivalence: the gathered output is byte-identical to a
//     fault-free run of the same computation;
//   - guarantee band: every recovery re-solve stays within the paper's
//     Eq. (4) additive bound of the optimal distribution for the
//     surviving processors;
//   - determinism: the same seed replays the same run (asserted by the
//     fuzz harness running every schedule twice).
//
// Total loss — every rank dead before the pipeline can finish — is an
// accepted outcome, reported rather than failed.
//
// The pipeline assumes the paper's durable-input model: the scattered
// buffer and the merged output live in storage every candidate root
// can read (see DESIGN.md §9), so a promoted root resumes both the
// scatter and the merge bookkeeping.
package chaos

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/fault"
	"repro/internal/monitor"
	"repro/internal/mpi"
	"repro/internal/platform"
	"repro/internal/simgrid"
)

// item is one unit of pipeline work: an input value tagged with its
// output index, so recovery can redistribute items arbitrarily and the
// merge stays index-keyed.
type item struct {
	Idx, Val int
}

// Config parameterizes one chaos run.
type Config struct {
	// Seed drives the fault schedule and the input data.
	Seed int64
	// Procs are the platform's processors in world-rank order; Root
	// indexes the initial data root.
	Procs []core.Processor
	Root  int
	// Items is the pipeline's input size.
	Items int
	// CrashProb, DropProb and SlowProb are the per-rank fault
	// probabilities of the random schedule; MaxSlow bounds slow-link
	// factors.
	CrashProb, DropProb, SlowProb float64
	MaxSlow                       float64
	// Horizon bounds fault times; 0 derives it from the fault-free
	// makespan so faults land while the pipeline is actually running.
	Horizon float64
	// ProtectRoot exempts the initial root from random faults (the
	// pre-failover regime). Default false: the root is fair game.
	ProtectRoot bool
	// ForceRootCrash additionally crashes the initial root at the given
	// fraction of the horizon (e.g. 0.1 = early, mid-first-round).
	// Negative means no forced crash.
	ForceRootCrash float64
	// ExtraFaults are appended verbatim to the random schedule:
	// scripted, absolute-time faults (a specific worker crash, a root
	// crash at a known pipeline phase) on top of — or, with zero
	// probabilities, instead of — the random ones.
	ExtraFaults []fault.Fault
	// Graph, when set, replaces Procs/Root with a routed multi-hop
	// platform: ranks come from Graph.Flatten().Processors() (root
	// last), NetFaults are compiled into a fault.NetPlan over its
	// routes, and the world gets the graph's diffusion adjacency plus a
	// model-divergence detector so degraded re-solves fall back to
	// diffusion.
	Graph *platform.Graph
	// NetFaults are network-level faults — link degrades, flapping
	// links, site partitions that heal — declared against Graph's node
	// names. Requires Graph.
	NetFaults []fault.NetFault
	// Divergence tunes the detector wired into graph-backed runs; zero
	// fields take the monitor package defaults.
	Divergence monitor.DivergenceConfig
	// ExactRecovery omits the divergence detector from a graph-backed
	// run: every recovery re-solve uses the exact DP even when the
	// network is degraded. The degraded benchmark uses it as the
	// comparison baseline for the diffusion fallback.
	ExactRecovery bool
	// Policy governs detection, retry and re-election.
	Policy fault.Policy
	// Compute is the per-item computation; nil defaults to a fixed
	// nonlinear function so output mix-ups cannot cancel out.
	Compute func(int) int
}

// Result describes one chaos run.
type Result struct {
	// Plan is the generated fault schedule.
	Plan *fault.Plan
	// Horizon is the resolved fault horizon.
	Horizon float64
	// TotalLoss reports that every rank died before the pipeline could
	// complete; Output is nil in that case.
	TotalLoss bool
	// Makespan is the virtual-time finish of the whole pipeline, and
	// Stats the per-rank span timelines behind it.
	Makespan float64
	Stats    []mpi.RankStats
	// Output and Expected are the merged pipeline output and the
	// fault-free reference; Run verifies they are identical.
	Output, Expected []int
	// Failovers totals root re-elections across all collectives;
	// Recomputes counts re-scatter iterations for missing
	// contributions.
	Failovers  int
	Recomputes int
	// DiffuseRounds counts scatter rebalances that used the diffusion
	// fallback instead of the exact DP (degraded-network mode).
	DiffuseRounds int
	// Scatters and Gathers are the collectives' reports, in pipeline
	// order.
	Scatters []*mpi.ScatterReport
	Gathers  []*mpi.GatherReport
}

// defaultCompute is deliberately non-linear and index-free: equal
// values always map to equal outputs, so only true exactly-once
// delivery reproduces the expected output.
func defaultCompute(v int) int { return v*v + 3*v + 7 }

// refEngine memoizes the harness's reference solves (horizon sizing,
// guarantee-band optima) across runs. Engine results are bit-identical
// to the fresh exact solvers regardless of cache state — the property
// FuzzPlanResolve and the resolve-identity invariant below pin — so
// sharing it cannot perturb a verdict.
var refEngine = core.NewEngine(0)

// balance computes the reference optimum through the incremental
// engine: exact Algorithm 1 for general-class platforms, the retained
// Algorithm 2 plan otherwise — the same dispatch the runtime's own
// solves use (mpi.BalancedCounts and the FaultTolerantScatterv
// rebalances go through their world's engine).
func balance(procs []core.Processor, n int) (core.Result, error) {
	return refEngine.Solve(procs, n)
}

// freshSolve is the from-scratch solver the engine must agree with,
// dispatched by platform class alone.
func freshSolve(procs []core.Processor, n int) (core.Result, error) {
	if core.PlatformClass(procs) == cost.General {
		return core.Algorithm1(procs, n)
	}
	return core.Algorithm2(procs, n)
}

// faultFreeMakespan solves the balanced distribution on the fault-free
// platform and returns its makespan (scatter + compute for the
// survivors' service order, root last with free communication).
func faultFreeMakespan(cfg Config) float64 {
	order := make([]core.Processor, 0, len(cfg.Procs))
	for r, p := range cfg.Procs {
		if r != cfg.Root {
			order = append(order, p)
		}
	}
	rootProc := cfg.Procs[cfg.Root]
	rootProc.Comm = cost.Zero
	order = append(order, rootProc)
	res, err := balance(order, cfg.Items)
	if err != nil {
		return float64(cfg.Items)
	}
	return res.Makespan
}

// buildPlan draws the seeded fault schedule.
func buildPlan(cfg Config, horizon float64) (*fault.Plan, error) {
	exempt := -1
	if cfg.ProtectRoot {
		exempt = cfg.Root
	}
	plan := fault.Random(fault.RandomConfig{
		Seed:      cfg.Seed,
		Ranks:     len(cfg.Procs),
		Root:      exempt,
		Horizon:   horizon,
		CrashProb: cfg.CrashProb,
		DropProb:  cfg.DropProb,
		SlowProb:  cfg.SlowProb,
		MaxSlow:   cfg.MaxSlow,
	})
	faults := plan.Faults()
	faults = append(faults, cfg.ExtraFaults...)
	if cfg.ForceRootCrash >= 0 {
		faults = append(faults, fault.Fault{
			Kind: fault.Crash, Rank: cfg.Root, Start: cfg.ForceRootCrash * horizon,
		})
	}
	if len(cfg.ExtraFaults) == 0 && cfg.ForceRootCrash < 0 {
		return plan, nil
	}
	return fault.NewPlan(faults...)
}

// Run executes one chaos pipeline and machine-checks its invariants,
// returning an error on any violation. Total loss is not a violation.
func Run(cfg Config) (*Result, error) {
	var netplan *fault.NetPlan
	var diffAdj [][]int
	if cfg.Graph != nil {
		pl, err := cfg.Graph.Flatten()
		if err != nil {
			return nil, fmt.Errorf("chaos: flattening graph: %w", err)
		}
		procs, err := pl.Processors()
		if err != nil {
			return nil, fmt.Errorf("chaos: graph processors: %w", err)
		}
		rankNodes, err := cfg.Graph.ProcessorNodes()
		if err != nil {
			return nil, fmt.Errorf("chaos: graph rank nodes: %w", err)
		}
		netplan, err = simgrid.BuildNetPlan(*cfg.Graph, rankNodes, cfg.NetFaults)
		if err != nil {
			return nil, fmt.Errorf("chaos: compiling net faults: %w", err)
		}
		cfg.Procs = procs
		cfg.Root = len(procs) - 1
		diffAdj = cfg.Graph.RankAdjacency(rankNodes)
	} else if len(cfg.NetFaults) > 0 {
		return nil, fmt.Errorf("chaos: NetFaults require a Graph")
	}
	p := len(cfg.Procs)
	if p < 2 {
		return nil, fmt.Errorf("chaos: need at least 2 ranks, have %d", p)
	}
	if cfg.Root < 0 || cfg.Root >= p {
		return nil, fmt.Errorf("chaos: root %d out of range", cfg.Root)
	}
	if cfg.Items < 1 {
		return nil, fmt.Errorf("chaos: need at least 1 item, have %d", cfg.Items)
	}
	compute := cfg.Compute
	if compute == nil {
		compute = defaultCompute
	}

	horizon := cfg.Horizon
	if horizon <= 0 {
		horizon = 2 * faultFreeMakespan(cfg)
		if horizon <= 0 {
			horizon = 1
		}
	}
	plan, err := buildPlan(cfg, horizon)
	if err != nil {
		return nil, fmt.Errorf("chaos: building plan: %w", err)
	}

	// Seeded input; the expected output is computed directly, with no
	// runtime involved — the reference a faulty run must reproduce.
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x5ca77e4))
	input := make([]int, cfg.Items)
	data := make([]item, cfg.Items)
	expected := make([]int, cfg.Items)
	for i := range input {
		input[i] = rng.Intn(1 << 16)
		data[i] = item{Idx: i, Val: input[i]}
		expected[i] = compute(input[i])
	}

	w, err := mpi.NewWorld(cfg.Procs, cfg.Root)
	if err != nil {
		return nil, fmt.Errorf("chaos: %w", err)
	}
	w.SetFaultPlan(plan, cfg.Policy)
	if cfg.Graph != nil {
		w.SetNetPlan(netplan)
		w.SetDiffusionAdjacency(diffAdj)
		if !cfg.ExactRecovery {
			w.SetDivergence(monitor.NewDivergence(cfg.Divergence))
		}
	}

	res := &Result{Plan: plan, Horizon: horizon, Expected: expected}
	// Durable root-side state: the output merge mask. Only the current
	// root touches these between collectives (see the package comment
	// on the durable-storage assumption).
	output := make([]int, cfg.Items)
	mask := make([]bool, cfg.Items)
	filled := 0
	// finished counts ranks that ran the pipeline to completion; they
	// finish concurrently, unlike the root-only merge bookkeeping.
	var finishMu sync.Mutex
	finished := 0
	maxIters := 4 + 2*p

	stats, err := mpi.Run(w, func(c *mpi.Comm) error {
		// comm follows the shrinking survivor communicator; the deferred
		// Merge folds its clock back into the top-level handle so the
		// run's Finish times (and Makespan) cover the whole pipeline.
		comm := c
		defer func() { c.Merge(comm) }()
		counts := mpi.BalancedCounts(comm, len(data))
		var rootData []item
		if comm.IsRoot() {
			rootData = data
		}
		chunk, srep, err := mpi.FaultTolerantScatterv(comm, rootData, counts)
		if err != nil {
			return nil // this rank is dead; the survivors carry on
		}
		comm = srep.Survivors
		if comm.IsRoot() {
			res.Scatters = append(res.Scatters, srep)
		}

		for iter := 0; ; iter++ {
			// Compute this rank's share.
			computed := make([]item, len(chunk))
			for i, it := range chunk {
				computed[i] = item{Idx: it.Idx, Val: compute(it.Val)}
			}
			comm.ChargeItems(len(chunk))

			// Gather the contributions at the (possibly re-elected)
			// root and merge them index-keyed. The mask makes the
			// merge idempotent: a share recomputed after a root
			// failover can never land twice.
			results, grep, err := mpi.FaultTolerantGatherv(comm, computed)
			if err != nil {
				return nil
			}
			comm = grep.Survivors
			var uncovered []item
			if comm.IsRoot() {
				res.Gathers = append(res.Gathers, grep)
				for _, it := range results {
					if !mask[it.Idx] {
						mask[it.Idx] = true
						output[it.Idx] = it.Val
						filled++
					}
				}
				if filled < cfg.Items {
					for i, done := range mask {
						if !done {
							uncovered = append(uncovered, item{Idx: i, Val: input[i]})
						}
					}
				}
			}
			// Everyone agrees on whether work remains (only the root's
			// payload is significant, as in Bcast).
			remaining, err := mpi.Bcast(comm, []int{len(uncovered)})
			if err != nil {
				return nil
			}
			if remaining[0] == 0 {
				break
			}
			if iter >= maxIters {
				return fmt.Errorf("chaos: no progress after %d recompute iterations", iter)
			}

			// Re-scatter the uncovered inputs over the survivors and
			// go around again.
			if comm.IsRoot() {
				res.Recomputes++
			}
			counts := mpi.BalancedCounts(comm, remaining[0])
			chunk, srep, err = mpi.FaultTolerantScatterv(comm, uncovered, counts)
			if err != nil {
				return nil
			}
			comm = srep.Survivors
			if comm.IsRoot() {
				res.Scatters = append(res.Scatters, srep)
			}
		}
		finishMu.Lock()
		finished++
		finishMu.Unlock()
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("chaos: pipeline: %w", err)
	}
	res.Stats = stats
	res.Makespan = mpi.Makespan(stats)

	if finished == 0 {
		res.TotalLoss = true
		return res, nil
	}
	res.Output = output
	for _, s := range res.Scatters {
		res.Failovers += s.Failovers
		for _, rb := range s.Rebalances {
			if rb.Mode == mpi.RebalanceDiffuse {
				res.DiffuseRounds++
			}
		}
	}
	for _, g := range res.Gathers {
		res.Failovers += g.Failovers
	}
	if err := verify(cfg, res, mask); err != nil {
		return res, err
	}
	return res, nil
}

// verify machine-checks the run's invariants.
func verify(cfg Config, res *Result, mask []bool) error {
	// Exactly once: the merge mask is full (at-most-once is enforced by
	// the mask itself, so full coverage means exactly once)...
	for i, done := range mask {
		if !done {
			return fmt.Errorf("chaos: item %d never delivered", i)
		}
	}
	// ...and each scatter's ledger covers its input with no overlap.
	for i, s := range res.Scatters {
		n := s.Planned.Sum()
		if s.Ledger == nil {
			return fmt.Errorf("chaos: scatter %d has no ledger", i)
		}
		if err := s.Ledger.VerifyExactlyOnce(n); err != nil {
			return fmt.Errorf("chaos: scatter %d: %w", i, err)
		}
	}
	// Equivalence: byte-identical to the fault-free computation.
	for i := range res.Expected {
		if res.Output[i] != res.Expected[i] {
			return fmt.Errorf("chaos: output[%d] = %d, want %d", i, res.Output[i], res.Expected[i])
		}
	}
	// Every recovery re-solve is audited by mode: exact rebalances stay
	// inside the Eq. (4) guarantee band and replay bit-identically
	// through the from-scratch solver; diffuse rebalances replay
	// bit-identically through core.DiffusePool over the recorded live
	// adjacency and — when that adjacency is connected — stay inside the
	// documented diffusion band; uniform rebalances (the last-resort
	// split) only need conservation.
	for i, s := range res.Scatters {
		for j, rb := range s.Rebalances {
			if got := rb.Dist.Sum(); got != rb.Items {
				return fmt.Errorf("chaos: scatter %d rebalance %d: %s distribution moves %d of %d items",
					i, j, rb.Mode, got, rb.Items)
			}
			switch rb.Mode {
			case mpi.RebalanceDiffuse:
				if err := verifyDiffuse(i, j, rb); err != nil {
					return err
				}
			case mpi.RebalanceUniform:
				// Conservation (checked above) is all a last-resort
				// split promises.
			default: // exact, including pre-Mode records
				if err := verifyExact(i, j, rb); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// verifyExact audits one exact-mode rebalance: the Eq. (4) guarantee
// band plus bit-identity with a from-scratch solve.
func verifyExact(i, j int, rb mpi.Rebalance) error {
	ms := core.Makespan(rb.Procs, rb.Dist)
	opt, err := balance(rb.Procs, rb.Items)
	if err != nil {
		return fmt.Errorf("chaos: scatter %d rebalance %d: re-solving: %w", i, j, err)
	}
	if band := opt.Makespan + core.GuaranteeBound(rb.Procs) + 1e-9; ms > band {
		return fmt.Errorf("chaos: scatter %d rebalance %d: makespan %g exceeds guarantee band %g",
			i, j, ms, band)
	}
	// Resolve identity: the runtime's warm-started re-solve
	// must match the from-scratch exact solver bit for bit.
	// The comparison re-runs the O(p·n²) DP, so it is bounded
	// to the fuzz-corpus scale; larger runs are still covered
	// by the band check above.
	if rb.Items <= resolveIdentityMaxItems {
		fresh, err := freshSolve(rb.Procs, rb.Items)
		if err != nil {
			return fmt.Errorf("chaos: scatter %d rebalance %d: fresh solve: %w", i, j, err)
		}
		if len(fresh.Distribution) != len(rb.Dist) {
			return fmt.Errorf("chaos: scatter %d rebalance %d: resolve has %d shares, fresh %d",
				i, j, len(rb.Dist), len(fresh.Distribution))
		}
		for k := range rb.Dist {
			if rb.Dist[k] != fresh.Distribution[k] {
				return fmt.Errorf("chaos: scatter %d rebalance %d: share %d: resolve %d != fresh %d",
					i, j, k, rb.Dist[k], fresh.Distribution[k])
			}
		}
	}
	return nil
}

// verifyDiffuse audits one diffusion-mode rebalance: bit-identity with
// a replayed diffusion over the recorded live adjacency (so items can
// never have crossed a cut edge) and, when the survivors were all in
// one component, the documented quality band against the exact
// optimum.
func verifyDiffuse(i, j int, rb mpi.Rebalance) error {
	if rb.Adjacency == nil {
		return fmt.Errorf("chaos: scatter %d rebalance %d: diffuse rebalance without its adjacency", i, j)
	}
	fresh, _, err := core.DiffusePool(rb.Procs, rb.Adjacency, rb.Items)
	if err != nil {
		return fmt.Errorf("chaos: scatter %d rebalance %d: replaying diffusion: %w", i, j, err)
	}
	if len(fresh.Distribution) != len(rb.Dist) {
		return fmt.Errorf("chaos: scatter %d rebalance %d: diffusion has %d shares, replay %d",
			i, j, len(rb.Dist), len(fresh.Distribution))
	}
	for k := range rb.Dist {
		if rb.Dist[k] != fresh.Distribution[k] {
			return fmt.Errorf("chaos: scatter %d rebalance %d: share %d: diffusion %d != replay %d",
				i, j, k, rb.Dist[k], fresh.Distribution[k])
		}
	}
	if !connectedAdj(rb.Adjacency) || rb.Items > resolveIdentityMaxItems {
		return nil
	}
	ms := core.Makespan(rb.Procs, rb.Dist)
	opt, err := balance(rb.Procs, rb.Items)
	if err != nil {
		return fmt.Errorf("chaos: scatter %d rebalance %d: diffusion reference solve: %w", i, j, err)
	}
	band := core.DiffusionBandFactor*opt.Makespan + core.GuaranteeBound(rb.Procs) + 1e-9
	if ms > band {
		return fmt.Errorf("chaos: scatter %d rebalance %d: diffuse makespan %g exceeds band %g (exact %g)",
			i, j, ms, band, opt.Makespan)
	}
	return nil
}

// connectedAdj reports whether the adjacency forms one component.
func connectedAdj(adj [][]int) bool {
	if len(adj) == 0 {
		return true
	}
	seen := make([]bool, len(adj))
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, nb := range adj[v] {
			if nb >= 0 && nb < len(adj) && !seen[nb] {
				seen[nb] = true
				count++
				stack = append(stack, nb)
			}
		}
	}
	return count == len(adj)
}

// resolveIdentityMaxItems bounds the from-scratch DP re-run of the
// resolve-identity invariant; every chaos fuzz-corpus instance is far
// below it.
const resolveIdentityMaxItems = 4096

package chaos

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/fault"
)

// testProcs builds a small heterogeneous linear platform: three link
// speeds and three compute speeds cycling across the ranks.
func testProcs(p int) []core.Processor {
	procs := make([]core.Processor, p)
	for r := range procs {
		procs[r] = core.Processor{
			Name: fmt.Sprintf("M%d", r),
			Comm: cost.Linear{PerItem: 0.5 + 0.5*float64(r%3)},
			Comp: cost.Linear{PerItem: 1 + float64((r+1)%3)},
		}
	}
	return procs
}

func testConfig(seed int64, p, items int) Config {
	return Config{
		Seed:           seed,
		Procs:          testProcs(p),
		Root:           p - 1,
		Items:          items,
		MaxSlow:        4,
		ForceRootCrash: -1,
		Policy: fault.Policy{
			Timeout:    1,
			MaxRetries: 2,
			Backoff:    fault.Backoff{Base: 0.5, Factor: 2, Cap: 2},
		},
	}
}

func TestChaosQuietRun(t *testing.T) {
	cfg := testConfig(1, 4, 40)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalLoss {
		t.Fatal("fault-free run reported total loss")
	}
	if res.Failovers != 0 || res.Recomputes != 0 {
		t.Errorf("Failovers, Recomputes = %d, %d; want 0, 0", res.Failovers, res.Recomputes)
	}
	if len(res.Scatters) != 1 || len(res.Gathers) != 1 {
		t.Errorf("scatters, gathers = %d, %d; want 1, 1", len(res.Scatters), len(res.Gathers))
	}
	// Run already verified Output == Expected; spot-check anyway.
	for i := range res.Expected {
		if res.Output[i] != res.Expected[i] {
			t.Fatalf("output[%d] = %d, want %d", i, res.Output[i], res.Expected[i])
		}
	}
}

func TestChaosRootCrashMidScatter(t *testing.T) {
	// The acceptance scenario: the data root dies early in the first
	// scatter round. A new root must be elected, the scatter must
	// resume from the ledger checkpoint, compute and gather must
	// complete, and the output must be identical to a fault-free run —
	// Run machine-checks all of it and errors otherwise.
	cfg := testConfig(42, 4, 64)
	cfg.ForceRootCrash = 0.05
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalLoss {
		t.Fatal("root crash cascaded to total loss")
	}
	if res.Failovers < 1 {
		t.Fatalf("Failovers = %d, want >= 1", res.Failovers)
	}
	first := res.Scatters[0]
	if first.Failovers < 1 || first.RootPath[0] != cfg.Root {
		t.Errorf("first scatter Failovers = %d, RootPath = %v; want a failover away from rank %d",
			first.Failovers, first.RootPath, cfg.Root)
	}
	if first.FinalRoot() == cfg.Root {
		t.Error("first scatter still rooted at the crashed rank")
	}
}

func TestChaosRootCrashLateNoFailover(t *testing.T) {
	// A root crash far beyond the pipeline's lifetime never fires: the
	// run is failure-free. This pins the satellite fix — crash plans
	// against the root are resolved against the simulated clock, not
	// rejected up front.
	cfg := testConfig(3, 4, 24)
	cfg.Horizon = 1e6
	cfg.ForceRootCrash = 0.9
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalLoss || res.Failovers != 0 {
		t.Errorf("TotalLoss, Failovers = %v, %d; want false, 0", res.TotalLoss, res.Failovers)
	}
}

func TestChaosCrashStormOrTotalLoss(t *testing.T) {
	// A heavy crash schedule must end either in a verified partial-
	// survivor run or an explicit total loss — never a violation.
	for seed := int64(0); seed < 8; seed++ {
		cfg := testConfig(seed, 6, 48)
		cfg.CrashProb = 0.7
		cfg.DropProb = 0.3
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.TotalLoss && res.Output != nil {
			t.Fatalf("seed %d: total loss with an output", seed)
		}
	}
}

func TestChaosTotalLoss(t *testing.T) {
	// Everyone dies at t≈0: the harness reports total loss explicitly.
	cfg := testConfig(5, 4, 16)
	cfg.CrashProb = 1
	cfg.Horizon = 1e-6
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.TotalLoss {
		t.Fatalf("Failovers = %d, Output = %v: expected total loss", res.Failovers, res.Output)
	}
}

func TestChaosDeterminism(t *testing.T) {
	cfg := testConfig(99, 5, 80)
	cfg.CrashProb = 0.4
	cfg.DropProb = 0.4
	cfg.SlowProb = 0.4
	cfg.ForceRootCrash = 0.2
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalLoss != b.TotalLoss || a.Failovers != b.Failovers ||
		a.Recomputes != b.Recomputes || len(a.Scatters) != len(b.Scatters) {
		t.Fatalf("replay diverged: %+v vs %+v", a, b)
	}
	if len(a.Output) != len(b.Output) {
		t.Fatalf("replay output lengths differ: %d vs %d", len(a.Output), len(b.Output))
	}
	for i := range a.Output {
		if a.Output[i] != b.Output[i] {
			t.Fatalf("replay output[%d] differs: %d vs %d", i, a.Output[i], b.Output[i])
		}
	}
}

func TestChaosConfigValidation(t *testing.T) {
	if _, err := Run(Config{Procs: testProcs(1), Root: 0, Items: 4}); err == nil {
		t.Error("single-rank config accepted")
	}
	if _, err := Run(Config{Procs: testProcs(4), Root: 9, Items: 4}); err == nil {
		t.Error("out-of-range root accepted")
	}
	if _, err := Run(Config{Procs: testProcs(4), Root: 0, Items: 0}); err == nil {
		t.Error("empty input accepted")
	}
}

// FuzzChaos replays seeded fault schedules through the full pipeline
// and requires every run to verify its invariants and replay
// deterministically. The committed corpus (testdata/fuzz/FuzzChaos)
// pins the named scenarios — root crash mid-scatter, quiet run, crash
// storm, drop-heavy, slow links — as deterministic CI regressions.
func FuzzChaos(f *testing.F) {
	f.Add(int64(42), uint16(2), uint16(63), uint8(0), uint8(0), uint8(0), true)
	f.Add(int64(7), uint16(4), uint16(47), uint8(80), uint8(20), uint8(0), true)
	f.Add(int64(11), uint16(2), uint16(31), uint8(10), uint8(90), uint8(0), false)
	f.Fuzz(func(t *testing.T, seed int64, ranks, items uint16, crashPct, dropPct, slowPct uint8, rootCrash bool) {
		p := 2 + int(ranks%7)   // 2..8 ranks
		n := 1 + int(items%192) // 1..192 items
		cfg := testConfig(seed, p, n)
		cfg.CrashProb = float64(crashPct%101) / 100
		cfg.DropProb = float64(dropPct%101) / 100
		cfg.SlowProb = float64(slowPct%101) / 100
		if rootCrash {
			cfg.ForceRootCrash = 0.1
		}
		a, err := Run(cfg)
		if err != nil {
			t.Fatalf("invariant violation: %v", err)
		}
		b, err := Run(cfg)
		if err != nil {
			t.Fatalf("replay violation: %v", err)
		}
		if a.TotalLoss != b.TotalLoss || a.Failovers != b.Failovers || len(a.Output) != len(b.Output) {
			t.Fatal("replay diverged")
		}
		for i := range a.Output {
			if a.Output[i] != b.Output[i] {
				t.Fatalf("replay output[%d] differs", i)
			}
		}
	})
}

package chaos

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/monitor"
	"repro/internal/platform"
)

// chaosGraph is the degraded-scenario topology: the root's site with
// one extra worker, a second site one hop away, and a third site whose
// cheapest route runs through the second — so a siteB partition also
// severs siteC unless traffic falls back to the expensive direct link.
//
// Flattened rank order (root last): a1=0 (siteA), b1=1 (siteB),
// c1=2 (siteC), root0=3 (siteA).
func chaosGraph() platform.Graph {
	return platform.Graph{
		Name: "chaos-grid",
		Root: "root0",
		Nodes: []platform.Node{
			{Name: "siteA", Machines: []platform.Machine{
				{Name: "root0", CPUs: 1, Beta: 1},
				{Name: "a1", CPUs: 1, Beta: 1, Alpha: 0.05},
			}},
			{Name: "siteB", Machines: []platform.Machine{
				{Name: "b1", CPUs: 1, Beta: 2, Alpha: 0.05},
			}},
			{Name: "siteC", Machines: []platform.Machine{
				{Name: "c1", CPUs: 1, Beta: 1, Alpha: 0.05},
			}},
		},
		Links: []platform.Link{
			{A: "siteA", B: "siteB", Alpha: 0.2},
			{A: "siteB", B: "siteC", Alpha: 0.2},
			{A: "siteA", B: "siteC", Alpha: 0.6},
		},
	}
}

// degradedConfig is the scenario baseline: a graph-backed run with no
// rank-level faults and a retry policy patient enough to ride out the
// scripted partitions.
func degradedConfig(seed int64, items int, faults []fault.NetFault) Config {
	g := chaosGraph()
	return Config{
		Seed:           seed,
		Items:          items,
		Graph:          &g,
		NetFaults:      faults,
		Horizon:        1, // irrelevant: no random rank faults
		ForceRootCrash: -1,
		Divergence:     monitor.DivergenceConfig{Window: 4, Trip: 2, Clear: 3},
		Policy: fault.Policy{
			Timeout:    1,
			MaxRetries: 5,
			Backoff:    fault.Backoff{Base: 0.25, Factor: 2, Cap: 1},
		},
	}
}

func scatterTimeouts(res *Result) int {
	n := 0
	for _, s := range res.Scatters {
		n += s.Timeouts
	}
	return n
}

func TestChaosPartitionDuringScatter(t *testing.T) {
	// siteC drops off the grid shortly after the scatter starts and
	// heals at t=4. Transfers to c1 inside the window are lost; the
	// retries span the heal, c1 rejoins mid-scatter, and the pipeline
	// must finish with the fault-free output and no rank declared dead.
	cfg := degradedConfig(21, 24, []fault.NetFault{
		{Kind: fault.Partition, Site: "siteC", Start: 0.5, End: 4},
	})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalLoss {
		t.Fatal("partition-and-heal run reported total loss")
	}
	if scatterTimeouts(res) == 0 {
		t.Error("partition during scatter caused no timeouts — the window missed the transfers")
	}
	for _, s := range res.Scatters {
		if len(s.Failed) != 0 {
			t.Errorf("ranks %v declared dead despite the heal", s.Failed)
		}
	}
}

func TestChaosRootIsolatedThenHealed(t *testing.T) {
	// The root's own site is cut off: every off-site transfer times out
	// until the heal at t=3. The co-located worker a1 stays reachable
	// throughout. Retries must carry b1 and c1 across the heal.
	cfg := degradedConfig(22, 24, []fault.NetFault{
		{Kind: fault.Partition, Site: "siteA", Start: 0.25, End: 3},
	})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalLoss {
		t.Fatal("root isolation cascaded to total loss")
	}
	if scatterTimeouts(res) == 0 {
		t.Error("root isolation caused no timeouts")
	}
	for _, s := range res.Scatters {
		if len(s.Failed) != 0 {
			t.Errorf("ranks %v declared dead despite the heal", s.Failed)
		}
	}
}

func TestChaosRootIsolationExhaustsIntoDiffusion(t *testing.T) {
	// Same isolation but with an impatient policy and no heal in sight:
	// the off-site ranks exhaust their retries and die, the divergence
	// detector is pinned by the partition, and the reclaimed items are
	// re-balanced by diffusion over the root's residual component.
	cfg := degradedConfig(23, 24, []fault.NetFault{
		{Kind: fault.Partition, Site: "siteA", Start: 0.25, End: 500},
	})
	cfg.Policy.MaxRetries = 2
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalLoss {
		t.Fatal("partial partition reported total loss")
	}
	if res.DiffuseRounds == 0 {
		t.Errorf("no diffusion rounds; scatters = %+v", res.Scatters)
	}
	// Every item must still land exactly once (Run verified it); the
	// dead ranks are exactly the off-site ones.
	failed := map[int]bool{}
	for _, s := range res.Scatters {
		for _, r := range s.Failed {
			failed[r] = true
		}
	}
	if !failed[1] || !failed[2] || failed[0] || failed[3] {
		t.Errorf("failed ranks = %v, want exactly the off-site ranks 1 and 2", failed)
	}
}

func TestChaosFlappingLink(t *testing.T) {
	// The siteA-siteB trunk flaps: down for the first 40% of every
	// second until t=6. Both b1's and c1's routes cross it, so their
	// transfers keep getting lost and retried; the run must still
	// converge to the fault-free output.
	cfg := degradedConfig(24, 24, []fault.NetFault{
		{Kind: fault.LinkFlap, EdgeA: "siteA", EdgeB: "siteB", Start: 0, End: 6, Period: 1, Duty: 0.4},
	})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalLoss {
		t.Fatal("flapping link cascaded to total loss")
	}
	if scatterTimeouts(res) == 0 {
		t.Error("flapping link caused no timeouts")
	}
}

func TestChaosSiteRejoin(t *testing.T) {
	// siteB is partitioned from the start; the heal lands while the
	// root is still retrying b1's share, so the site rejoins the
	// scatter it was born outside of. A degrade on the trunk afterwards
	// stretches the late transfers without losing them.
	cfg := degradedConfig(25, 24, []fault.NetFault{
		{Kind: fault.Partition, Site: "siteB", Start: 0, End: 3.5},
		{Kind: fault.LinkDegrade, EdgeA: "siteA", EdgeB: "siteB", Start: 3.5, End: 30, Factor: 2},
	})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalLoss {
		t.Fatal("site rejoin reported total loss")
	}
	for _, s := range res.Scatters {
		if len(s.Failed) != 0 {
			t.Errorf("ranks %v declared dead despite rejoining", s.Failed)
		}
	}
	if scatterTimeouts(res) == 0 {
		t.Error("partition caused no timeouts before the rejoin")
	}
}

func TestChaosDegradedDeterminism(t *testing.T) {
	cfg := degradedConfig(26, 32, []fault.NetFault{
		{Kind: fault.Partition, Site: "siteC", Start: 0.5, End: 200},
		{Kind: fault.LinkFlap, EdgeA: "siteA", EdgeB: "siteB", Start: 0, End: 5, Period: 1, Duty: 0.3},
	})
	cfg.Policy.MaxRetries = 2
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalLoss != b.TotalLoss || a.DiffuseRounds != b.DiffuseRounds ||
		a.Failovers != b.Failovers || len(a.Scatters) != len(b.Scatters) {
		t.Fatalf("replay diverged: %+v vs %+v", a, b)
	}
	for i := range a.Output {
		if a.Output[i] != b.Output[i] {
			t.Fatalf("replay output[%d] differs: %d vs %d", i, a.Output[i], b.Output[i])
		}
	}
}

// TestChaosDegradedSweep runs seeded random network-fault schedules —
// partitions that heal, degrades, flaps — over the routed graph, with
// rank-level crashes mixed in on half the seeds, and requires every
// run to pass the machine-checked invariants (exactly-once through
// partition and rejoin, diffuse rebalances bit-replayable over their
// live adjacency and inside the quality band, exact rebalances inside
// the Eq. (4) band).
func TestChaosDegradedSweep(t *testing.T) {
	sites := []string{"siteB", "siteC"}
	edges := [][2]string{{"siteA", "siteB"}, {"siteB", "siteC"}, {"siteA", "siteC"}}
	const seeds = 120
	diffused, degradedRuns := 0, 0
	for seed := int64(0); seed < seeds; seed++ {
		faults := fault.RandomNet(fault.RandomNetConfig{
			Seed:          seed,
			Sites:         sites,
			RootSite:      "siteA",
			Edges:         edges,
			Horizon:       12,
			PartitionProb: 0.4,
			DegradeProb:   0.4,
			FlapProb:      0.4,
			MaxFactor:     4,
		})
		if len(faults) > 0 {
			degradedRuns++
		}
		cfg := degradedConfig(seed, 16+int(seed%3)*8, faults)
		if seed%2 == 1 {
			cfg.CrashProb = 0.3
			cfg.Horizon = 12
		}
		if seed%3 == 2 {
			cfg.Policy.MaxRetries = 2 // let partitions kill ranks sometimes
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("seed %d (faults %v): %v", seed, faults, err)
		}
		diffused += res.DiffuseRounds
		if res.TotalLoss && res.Output != nil {
			t.Fatalf("seed %d: total loss with an output", seed)
		}
	}
	if degradedRuns < seeds/2 {
		t.Fatalf("only %d/%d sweep runs drew network faults — probabilities too low", degradedRuns, seeds)
	}
	if diffused == 0 {
		t.Error("no sweep run ever took the diffusion fallback — the sweep is not exercising degraded mode")
	}
}

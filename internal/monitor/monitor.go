// Package monitor implements a Network-Weather-Service-style resource
// monitor (Wolski et al., the paper's reference [25]). The paper's
// Section 3 notes that the computed distribution "is not necessarily
// based on static parameters estimated for the whole execution: a
// monitor daemon process (like [25]) running aside the application
// could be queried just before a scatter operation to retrieve the
// instantaneous grid characteristics."
//
// This package provides that daemon's core: per-resource measurement
// time series, a family of forecasters (last value, sliding mean,
// sliding median, exponential smoothing), and the NWS trick of
// dynamically selecting whichever forecaster has been most accurate so
// far. ApplyForecasts folds the forecasts back into a platform
// description so the solvers in internal/core can rebalance from fresh
// costs.
package monitor

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/platform"
)

// Measurement is one observation of a resource at a point in time.
type Measurement struct {
	// At is the observation time in seconds (any monotonic origin).
	At float64
	// Value is the observed quantity: this package uses availability
	// fractions in (0, 1] for CPUs and bandwidth fractions for links.
	Value float64
}

// Series is a bounded history of measurements (a ring buffer).
type Series struct {
	buf   []Measurement
	start int
	size  int
}

// NewSeries creates a series keeping at most capacity measurements.
func NewSeries(capacity int) *Series {
	if capacity < 1 {
		capacity = 1
	}
	return &Series{buf: make([]Measurement, capacity)}
}

// Observe appends a measurement, evicting the oldest at capacity.
func (s *Series) Observe(m Measurement) {
	if s.size < len(s.buf) {
		s.buf[(s.start+s.size)%len(s.buf)] = m
		s.size++
		return
	}
	s.buf[s.start] = m
	s.start = (s.start + 1) % len(s.buf)
}

// Len returns the number of retained measurements.
func (s *Series) Len() int { return s.size }

// At returns the i-th retained measurement, oldest first.
func (s *Series) At(i int) Measurement {
	return s.buf[(s.start+i)%len(s.buf)]
}

// Last returns the most recent measurement.
func (s *Series) Last() (Measurement, bool) {
	if s.size == 0 {
		return Measurement{}, false
	}
	return s.At(s.size - 1), true
}

// Forecaster predicts the next value of a series.
type Forecaster interface {
	// Name identifies the forecaster in reports.
	Name() string
	// Forecast predicts the next value; ok is false when the series
	// is too short.
	Forecast(s *Series) (value float64, ok bool)
}

// LastValue predicts the most recent observation (a random-walk
// forecast).
type LastValue struct{}

// Name returns "last".
func (LastValue) Name() string { return "last" }

// Forecast returns the latest observation.
func (LastValue) Forecast(s *Series) (float64, bool) {
	m, ok := s.Last()
	return m.Value, ok
}

// MeanWindow predicts the mean of the last K observations.
type MeanWindow struct {
	// K is the window length.
	K int
}

// Name returns "mean(K)".
func (f MeanWindow) Name() string { return fmt.Sprintf("mean(%d)", f.K) }

// Forecast averages the last K observations.
func (f MeanWindow) Forecast(s *Series) (float64, bool) {
	k := f.K
	if k < 1 || s.Len() == 0 {
		return 0, false
	}
	if k > s.Len() {
		k = s.Len()
	}
	sum := 0.0
	for i := s.Len() - k; i < s.Len(); i++ {
		sum += s.At(i).Value
	}
	return sum / float64(k), true
}

// MedianWindow predicts the median of the last K observations, robust
// to measurement spikes.
type MedianWindow struct {
	// K is the window length.
	K int
}

// Name returns "median(K)".
func (f MedianWindow) Name() string { return fmt.Sprintf("median(%d)", f.K) }

// Forecast returns the median of the last K observations.
func (f MedianWindow) Forecast(s *Series) (float64, bool) {
	k := f.K
	if k < 1 || s.Len() == 0 {
		return 0, false
	}
	if k > s.Len() {
		k = s.Len()
	}
	vals := make([]float64, 0, k)
	for i := s.Len() - k; i < s.Len(); i++ {
		vals = append(vals, s.At(i).Value)
	}
	sort.Float64s(vals)
	if k%2 == 1 {
		return vals[k/2], true
	}
	return (vals[k/2-1] + vals[k/2]) / 2, true
}

// EWMA predicts by exponentially weighted moving average with
// smoothing factor Alpha in (0, 1]: higher Alpha reacts faster.
type EWMA struct {
	// Alpha is the smoothing factor.
	Alpha float64
}

// Name returns "ewma(alpha)".
func (f EWMA) Name() string { return fmt.Sprintf("ewma(%.2f)", f.Alpha) }

// Forecast folds the whole retained series.
func (f EWMA) Forecast(s *Series) (float64, bool) {
	if s.Len() == 0 || f.Alpha <= 0 || f.Alpha > 1 {
		return 0, false
	}
	acc := s.At(0).Value
	for i := 1; i < s.Len(); i++ {
		acc = f.Alpha*s.At(i).Value + (1-f.Alpha)*acc
	}
	return acc, true
}

// DefaultForecasters returns the NWS-like ensemble.
func DefaultForecasters() []Forecaster {
	return []Forecaster{
		LastValue{},
		MeanWindow{K: 5},
		MeanWindow{K: 20},
		MedianWindow{K: 5},
		EWMA{Alpha: 0.3},
	}
}

// resourceState tracks one resource: its series plus each forecaster's
// running absolute error (computed by forecasting each new observation
// before recording it — the NWS postcast evaluation).
type resourceState struct {
	series    *Series
	predicted []float64 // last prediction per forecaster (NaN if none)
	errSum    []float64
	errCount  []int
}

// Monitor is a registry of resource series with adaptive forecasting.
// It is safe for concurrent use.
type Monitor struct {
	mu          sync.Mutex
	capacity    int                       //scatterlint:guardedby immutable
	forecasters []Forecaster              //scatterlint:guardedby immutable
	resources   map[string]*resourceState //scatterlint:guardedby mu
}

// New creates a monitor retaining up to capacity measurements per
// resource and using the given forecaster ensemble (DefaultForecasters
// when nil).
func New(capacity int, forecasters []Forecaster) *Monitor {
	if forecasters == nil {
		forecasters = DefaultForecasters()
	}
	return &Monitor{
		capacity:    capacity,
		forecasters: forecasters,
		resources:   make(map[string]*resourceState),
	}
}

// Observe records a measurement for the named resource, first scoring
// every forecaster's previous prediction against it.
func (m *Monitor) Observe(resource string, at, value float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.resources[resource]
	if !ok {
		st = &resourceState{
			series:    NewSeries(m.capacity),
			predicted: make([]float64, len(m.forecasters)),
			errSum:    make([]float64, len(m.forecasters)),
			errCount:  make([]int, len(m.forecasters)),
		}
		for i := range st.predicted {
			st.predicted[i] = math.NaN()
		}
		m.resources[resource] = st
	}
	// Score the standing predictions.
	for i, pred := range st.predicted {
		if !math.IsNaN(pred) {
			st.errSum[i] += math.Abs(pred - value)
			st.errCount[i]++
		}
	}
	st.series.Observe(Measurement{At: at, Value: value})
	// Stand new predictions for the next observation.
	for i, f := range m.forecasters {
		if v, ok := f.Forecast(st.series); ok {
			st.predicted[i] = v
		} else {
			st.predicted[i] = math.NaN()
		}
	}
}

// Forecast predicts the resource's next value using the forecaster
// with the lowest mean absolute error so far (the NWS adaptive
// selection); before any forecaster has been scored it falls back to
// the first applicable one. It also reports which forecaster won.
func (m *Monitor) Forecast(resource string) (value float64, method string, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.resources[resource]
	if !ok || st.series.Len() == 0 {
		return 0, "", fmt.Errorf("monitor: no measurements for %q", resource)
	}
	best := -1
	bestErr := math.Inf(1)
	for i := range m.forecasters {
		if st.errCount[i] == 0 {
			continue
		}
		e := st.errSum[i] / float64(st.errCount[i])
		if e < bestErr {
			best, bestErr = i, e
		}
	}
	if best < 0 {
		for i, f := range m.forecasters {
			if v, ok := f.Forecast(st.series); ok {
				return v, f.Name(), nil
			}
			_ = i
		}
		return 0, "", errors.New("monitor: no applicable forecaster")
	}
	v, ok := m.forecasters[best].Forecast(st.series)
	if !ok {
		return 0, "", errors.New("monitor: best forecaster became inapplicable")
	}
	return v, m.forecasters[best].Name(), nil
}

// Resources returns the monitored resource names, sorted.
func (m *Monitor) Resources() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.resources))
	for name := range m.resources {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// CPUResource and BWResource name the conventional series for a
// machine: CPU availability fraction and link bandwidth fraction, both
// in (0, 1].
func CPUResource(machine string) string { return "cpu:" + machine }

// BWResource names the bandwidth-fraction series of a machine's link.
func BWResource(machine string) string { return "bw:" + machine }

// UpResource names a machine's liveness series: 1 when the machine is
// observed serving, 0 when a transfer it was serving was cut by its
// crash. The fault-tolerant collectives feed it through
// fault.MonitorObserver, so a forecast near 0 flags a machine that
// should not win a root re-election.
func UpResource(machine string) string { return "up:" + machine }

// ApplyForecasts returns a copy of the platform whose cost constants
// reflect the monitor's instantaneous forecasts: a machine with CPU
// availability a gets beta/a (less of the CPU per second of wall
// clock), a link with bandwidth fraction b gets alpha/b. Resources
// without measurements keep their calibrated constants. Forecasts are
// clamped into [0.01, 1] — a machine never gets faster than its
// calibration and never infinitely slow.
func ApplyForecasts(p platform.Platform, m *Monitor) platform.Platform {
	out := p
	out.Machines = append([]platform.Machine(nil), p.Machines...)
	for i, machine := range out.Machines {
		if v, _, err := m.Forecast(CPUResource(machine.Name)); err == nil {
			out.Machines[i].Beta = machine.Beta / clampFrac(v)
		}
		if v, _, err := m.Forecast(BWResource(machine.Name)); err == nil && machine.Alpha > 0 {
			out.Machines[i].Alpha = machine.Alpha / clampFrac(v)
		}
	}
	return out
}

func clampFrac(v float64) float64 {
	if math.IsNaN(v) || v < 0.01 {
		return 0.01
	}
	if v > 1 {
		return 1
	}
	return v
}

package monitor

// Divergence decides when the planner's cost model can no longer be
// trusted. The fault-tolerant scatter predicts a cost for every
// transfer from the same model the solver optimized; the runtime then
// observes what the transfer actually took. On a healthy grid the two
// agree and exact DP re-solves stay meaningful. On a degraded network —
// flapping links, partitions, rerouted multi-hop paths — observations
// drift away from the plan, and optimizing the stale model is worse
// than not optimizing at all: that is when the scatter should fall back
// to diffusion rebalancing (core.Diffuse), which only needs the live
// adjacency.
//
// The detector is a windowed vote with hysteresis, in the NWS spirit of
// the rest of this package:
//
//   - a sample "diverges" when the observed cost exceeds the planned
//     cost by more than Threshold (relative);
//   - degraded mode trips when at least Trip of the last Window
//     samples diverge — a single noisy sample cannot flip the mode;
//   - exact mode returns only after Clear consecutive clean samples —
//     so the mode cannot thrash while the link flaps;
//   - ForceDegraded bypasses the vote for structural evidence
//     (a partition isolating the root) and pins degraded mode until
//     Heal is called, after which the vote applies again.
//
// Divergence is deliberately clock-free and allocation-free per sample:
// the scatter loop calls Observe once per completed (or failed)
// transfer under virtual time.

// DivergenceConfig tunes the detector. Zero values select defaults.
type DivergenceConfig struct {
	// Threshold is the relative slowdown that marks one sample as
	// divergent: observed > planned·(1+Threshold). Default 0.5.
	Threshold float64
	// Window is the number of recent samples voted over. Default 8.
	Window int
	// Trip is how many divergent samples within the window switch the
	// detector to degraded mode. Default max(2, Window/2).
	Trip int
	// Clear is how many consecutive clean samples switch it back to
	// exact mode. Default Window.
	Clear int
}

func (c DivergenceConfig) normalized() DivergenceConfig {
	if c.Threshold <= 0 {
		c.Threshold = 0.5
	}
	if c.Window <= 0 {
		c.Window = 8
	}
	if c.Trip <= 0 {
		c.Trip = c.Window / 2
		if c.Trip < 2 {
			c.Trip = 2
		}
	}
	if c.Trip > c.Window {
		c.Trip = c.Window
	}
	if c.Clear <= 0 {
		c.Clear = c.Window
	}
	return c
}

// Divergence is the model-divergence detector. The zero value is not
// ready; use NewDivergence.
type Divergence struct {
	cfg      DivergenceConfig
	recent   []bool // ring buffer of per-sample verdicts
	size     int
	head     int
	clean    int  // consecutive clean samples
	degraded bool // vote-driven state
	forced   bool // structural state (partition), pinned until Heal
	trips    int
	samples  int
}

// NewDivergence builds a detector with cfg (zero fields defaulted).
func NewDivergence(cfg DivergenceConfig) *Divergence {
	cfg = cfg.normalized()
	return &Divergence{cfg: cfg, recent: make([]bool, cfg.Window)}
}

// Observe records one completed transfer: the cost the plan predicted
// and the cost the runtime measured. It returns the detector's mode
// after the sample. Non-positive planned costs treat any positive
// observation as divergent (the model predicted a free transfer that
// was not).
func (d *Divergence) Observe(planned, observed float64) (degraded bool) {
	diverges := false
	if planned > 0 {
		diverges = observed > planned*(1+d.cfg.Threshold)
	} else {
		diverges = observed > 0
	}
	return d.observe(diverges)
}

// ObserveFailure records a transfer attempt that never completed — a
// timeout against a dropped or cut link. Whatever the model predicted,
// the network did not deliver, so the sample is divergent by
// definition.
func (d *Divergence) ObserveFailure() (degraded bool) {
	return d.observe(true)
}

func (d *Divergence) observe(diverges bool) (degraded bool) {
	d.samples++
	d.recent[d.head] = diverges
	d.head = (d.head + 1) % len(d.recent)
	if d.size < len(d.recent) {
		d.size++
	}
	if diverges {
		d.clean = 0
	} else {
		d.clean++
	}

	if !d.degraded {
		votes := 0
		for i := 0; i < d.size; i++ {
			if d.recent[i] {
				votes++
			}
		}
		if votes >= d.cfg.Trip {
			d.degraded = true
			d.trips++
		}
	} else if d.clean >= d.cfg.Clear {
		d.degraded = false
		d.reset()
	}
	return d.Degraded()
}

// reset empties the vote window after a recovery so stale divergent
// samples cannot instantly re-trip the detector.
func (d *Divergence) reset() {
	d.size = 0
	d.head = 0
	d.clean = 0
}

// ForceDegraded pins the detector in degraded mode on structural
// evidence — a partition that isolates the root or cuts off a site —
// regardless of the sample vote.
func (d *Divergence) ForceDegraded() {
	if !d.forced {
		d.trips++
	}
	d.forced = true
}

// Heal releases a ForceDegraded pin, e.g. when a partition's window
// ends. The vote-driven state is also cleared: the healed network gets
// a fresh window to prove itself.
func (d *Divergence) Heal() {
	d.forced = false
	d.degraded = false
	d.reset()
}

// Degraded reports whether re-solves should use the diffusion fallback
// instead of the exact DP.
func (d *Divergence) Degraded() bool { return d.degraded || d.forced }

// Forced reports whether degraded mode is pinned by structural
// evidence rather than the sample vote.
func (d *Divergence) Forced() bool { return d.forced }

// Trips returns how many times the detector entered degraded mode.
func (d *Divergence) Trips() int { return d.trips }

// Samples returns how many observations the detector has seen.
func (d *Divergence) Samples() int { return d.samples }

package monitor

import "testing"

func TestDivergenceThresholdCrossing(t *testing.T) {
	d := NewDivergence(DivergenceConfig{Threshold: 0.5, Window: 4, Trip: 2, Clear: 3})
	// Clean samples: observed within 1.5x planned.
	for i := 0; i < 10; i++ {
		if d.Observe(1.0, 1.4) {
			t.Fatalf("sample %d: tripped on clean stream", i)
		}
	}
	// Two divergent samples inside the window trip degraded mode.
	d.Observe(1.0, 2.0)
	if d.Degraded() {
		t.Fatal("tripped after a single divergent sample")
	}
	if !d.Observe(1.0, 3.0) {
		t.Fatal("did not trip after Trip divergent samples")
	}
	if d.Trips() != 1 {
		t.Errorf("Trips = %d, want 1", d.Trips())
	}
}

func TestDivergenceHysteresisNoThrash(t *testing.T) {
	d := NewDivergence(DivergenceConfig{Threshold: 0.5, Window: 4, Trip: 2, Clear: 3})
	// A single noisy sample in an otherwise clean stream must not
	// flip the mode...
	d.Observe(1.0, 5.0)
	for i := 0; i < 20; i++ {
		if d.Observe(1.0, 1.0) {
			t.Fatalf("sample %d: noisy singleton tripped the detector", i)
		}
	}
	// ...and once degraded, interleaved clean samples shorter than
	// Clear must not flip it back (the flapping-link pattern).
	d.Observe(1.0, 5.0)
	d.Observe(1.0, 5.0)
	if !d.Degraded() {
		t.Fatal("did not trip")
	}
	for cycle := 0; cycle < 5; cycle++ {
		d.Observe(1.0, 1.0)
		d.Observe(1.0, 1.0) // two clean — still below Clear=3
		if !d.Observe(1.0, 5.0) {
			t.Fatalf("cycle %d: mode thrashed back to exact mid-flap", cycle)
		}
	}
}

func TestDivergenceRecovery(t *testing.T) {
	d := NewDivergence(DivergenceConfig{Threshold: 0.5, Window: 4, Trip: 2, Clear: 3})
	d.Observe(1.0, 9.0)
	d.Observe(1.0, 9.0)
	if !d.Degraded() {
		t.Fatal("did not trip")
	}
	// Clear consecutive clean samples recover exact mode.
	d.Observe(1.0, 1.0)
	d.Observe(1.0, 1.0)
	if !d.Degraded() {
		t.Fatal("recovered before Clear clean samples")
	}
	if d.Observe(1.0, 1.0) {
		t.Fatal("did not recover after Clear clean samples")
	}
	// The vote window was reset: one divergent sample right after
	// recovery is again just noise.
	if d.Observe(1.0, 9.0) {
		t.Fatal("stale pre-recovery votes re-tripped the detector")
	}
	if !d.Observe(1.0, 9.0) {
		t.Fatal("fresh divergence after recovery did not trip")
	}
	if d.Trips() != 2 {
		t.Errorf("Trips = %d, want 2", d.Trips())
	}
}

func TestDivergenceForcedPartition(t *testing.T) {
	d := NewDivergence(DivergenceConfig{})
	d.ForceDegraded()
	if !d.Degraded() || !d.Forced() {
		t.Fatal("ForceDegraded did not pin degraded mode")
	}
	// No amount of clean samples un-pins a structural partition.
	for i := 0; i < 50; i++ {
		d.Observe(1.0, 1.0)
	}
	if !d.Degraded() {
		t.Fatal("clean samples released a forced partition pin")
	}
	// Healing releases the pin and clears the vote state.
	d.Heal()
	if d.Degraded() || d.Forced() {
		t.Fatal("Heal did not release the pin")
	}
	if d.Trips() != 1 {
		t.Errorf("Trips = %d, want 1", d.Trips())
	}
	// Repeated forcing counts one trip per episode.
	d.ForceDegraded()
	d.ForceDegraded()
	if d.Trips() != 2 {
		t.Errorf("Trips = %d, want 2", d.Trips())
	}
}

func TestDivergenceZeroPlanned(t *testing.T) {
	d := NewDivergence(DivergenceConfig{Window: 4, Trip: 2})
	// The model said "free" (e.g. root's own link); any positive
	// observation is divergent.
	d.Observe(0, 0.5)
	if !d.Observe(0, 0.5) {
		t.Fatal("positive observations against zero plan did not trip")
	}
	// Zero observed against zero planned is clean.
	d2 := NewDivergence(DivergenceConfig{Window: 4, Trip: 2})
	for i := 0; i < 10; i++ {
		if d2.Observe(0, 0) {
			t.Fatal("zero/zero sample tripped")
		}
	}
}

func TestDivergenceDefaults(t *testing.T) {
	cfg := DivergenceConfig{}.normalized()
	if cfg.Threshold != 0.5 || cfg.Window != 8 || cfg.Trip != 4 || cfg.Clear != 8 {
		t.Errorf("defaults = %+v", cfg)
	}
	// Trip never exceeds Window.
	cfg = DivergenceConfig{Window: 3, Trip: 9}.normalized()
	if cfg.Trip != 3 {
		t.Errorf("Trip = %d, want clamped to 3", cfg.Trip)
	}
	if d := NewDivergence(DivergenceConfig{}); d.Samples() != 0 {
		t.Errorf("fresh detector has %d samples", d.Samples())
	}
}

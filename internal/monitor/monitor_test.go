package monitor

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/platform"
)

func TestSeriesRingBuffer(t *testing.T) {
	s := NewSeries(3)
	for i := 0; i < 5; i++ {
		s.Observe(Measurement{At: float64(i), Value: float64(i * 10)})
	}
	if s.Len() != 3 {
		t.Fatalf("len = %d, want 3", s.Len())
	}
	// Oldest retained is i=2.
	for i := 0; i < 3; i++ {
		if got := s.At(i).Value; got != float64((i+2)*10) {
			t.Errorf("At(%d) = %g, want %g", i, got, float64((i+2)*10))
		}
	}
	last, ok := s.Last()
	if !ok || last.Value != 40 {
		t.Errorf("Last = %+v, %v", last, ok)
	}
}

func TestSeriesEmpty(t *testing.T) {
	s := NewSeries(4)
	if _, ok := s.Last(); ok {
		t.Error("empty series has a last value")
	}
	if s.Len() != 0 {
		t.Error("empty series has nonzero length")
	}
}

func TestSeriesMinimumCapacity(t *testing.T) {
	s := NewSeries(0)
	s.Observe(Measurement{Value: 1})
	s.Observe(Measurement{Value: 2})
	if s.Len() != 1 {
		t.Errorf("len = %d, want 1 (capacity clamped to 1)", s.Len())
	}
}

func fill(vals ...float64) *Series {
	s := NewSeries(100)
	for i, v := range vals {
		s.Observe(Measurement{At: float64(i), Value: v})
	}
	return s
}

func TestLastValueForecaster(t *testing.T) {
	v, ok := LastValue{}.Forecast(fill(1, 2, 3))
	if !ok || v != 3 {
		t.Errorf("last = %g, %v", v, ok)
	}
	if _, ok := (LastValue{}).Forecast(NewSeries(4)); ok {
		t.Error("forecast from empty series")
	}
}

func TestMeanWindowForecaster(t *testing.T) {
	v, ok := MeanWindow{K: 2}.Forecast(fill(1, 2, 4))
	if !ok || v != 3 {
		t.Errorf("mean(2) = %g, %v, want 3", v, ok)
	}
	// Window longer than the series uses everything.
	v, ok = MeanWindow{K: 10}.Forecast(fill(1, 2, 3))
	if !ok || v != 2 {
		t.Errorf("mean(10) over 3 = %g, want 2", v)
	}
	if _, ok := (MeanWindow{K: 0}).Forecast(fill(1)); ok {
		t.Error("K=0 accepted")
	}
}

func TestMedianWindowForecaster(t *testing.T) {
	v, ok := MedianWindow{K: 3}.Forecast(fill(1, 100, 2))
	if !ok || v != 2 {
		t.Errorf("median(3) = %g, want 2 (robust to the spike)", v)
	}
	v, ok = MedianWindow{K: 4}.Forecast(fill(1, 2, 3, 4))
	if !ok || v != 2.5 {
		t.Errorf("median(4) = %g, want 2.5", v)
	}
}

func TestEWMAForecaster(t *testing.T) {
	// Constant series forecasts the constant.
	v, ok := EWMA{Alpha: 0.5}.Forecast(fill(4, 4, 4, 4))
	if !ok || v != 4 {
		t.Errorf("ewma = %g, want 4", v)
	}
	// Reacts toward recent values.
	v, _ = EWMA{Alpha: 0.5}.Forecast(fill(0, 0, 0, 8))
	if v != 4 {
		t.Errorf("ewma = %g, want 4", v)
	}
	if _, ok := (EWMA{Alpha: 0}).Forecast(fill(1)); ok {
		t.Error("alpha=0 accepted")
	}
	if _, ok := (EWMA{Alpha: 2}).Forecast(fill(1)); ok {
		t.Error("alpha=2 accepted")
	}
}

func TestMonitorForecastUnknownResource(t *testing.T) {
	m := New(16, nil)
	if _, _, err := m.Forecast("cpu:nowhere"); err == nil {
		t.Error("forecast for unknown resource succeeded")
	}
}

func TestMonitorAdaptiveSelectionConstantSeries(t *testing.T) {
	m := New(64, nil)
	for i := 0; i < 30; i++ {
		m.Observe("cpu:steady", float64(i), 0.75)
	}
	v, method, err := m.Forecast("cpu:steady")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-0.75) > 1e-9 {
		t.Errorf("forecast = %g, want 0.75 (method %s)", v, method)
	}
}

func TestMonitorAdaptivePrefersMedianUnderSpikes(t *testing.T) {
	// A series that sits at 1.0 with occasional spikes to 0.1: the
	// median window has the lowest mean absolute error; last-value
	// gets burned after every spike.
	m := New(128, nil)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		v := 1.0
		if rng.Float64() < 0.15 {
			v = 0.1
		}
		m.Observe("cpu:spiky", float64(i), v)
	}
	v, method, err := m.Forecast("cpu:spiky")
	if err != nil {
		t.Fatal(err)
	}
	if v < 0.8 {
		t.Errorf("forecast = %g (%s), expected near the 1.0 baseline", v, method)
	}
	if method == "last" {
		t.Errorf("adaptive selection picked %q for a spiky series", method)
	}
}

func TestMonitorTracksRegimeChange(t *testing.T) {
	m := New(256, nil)
	for i := 0; i < 50; i++ {
		m.Observe("cpu:shift", float64(i), 1.0)
	}
	for i := 50; i < 100; i++ {
		m.Observe("cpu:shift", float64(i), 0.3)
	}
	v, _, err := m.Forecast("cpu:shift")
	if err != nil {
		t.Fatal(err)
	}
	if v > 0.5 {
		t.Errorf("forecast = %g after 50 samples at 0.3", v)
	}
}

func TestMonitorResources(t *testing.T) {
	m := New(8, nil)
	m.Observe(BWResource("b"), 0, 1)
	m.Observe(CPUResource("a"), 0, 1)
	got := m.Resources()
	if len(got) != 2 || got[0] != "bw:b" || got[1] != "cpu:a" {
		t.Errorf("Resources = %v", got)
	}
}

func TestApplyForecastsAdjustsCosts(t *testing.T) {
	p := platform.Platform{
		Name: "mini",
		Root: "r",
		Machines: []platform.Machine{
			{Name: "r", CPUs: 1, Beta: 0.01},
			{Name: "w", CPUs: 1, Beta: 0.004, Alpha: 1e-5},
		},
	}
	m := New(32, nil)
	for i := 0; i < 20; i++ {
		m.Observe(CPUResource("w"), float64(i), 0.5) // half the CPU available
		m.Observe(BWResource("w"), float64(i), 0.25) // quarter bandwidth
	}
	adjusted := ApplyForecasts(p, m)
	w, _ := adjusted.Machine("w")
	if math.Abs(w.Beta-0.008) > 1e-9 {
		t.Errorf("adjusted beta = %g, want 0.008", w.Beta)
	}
	if math.Abs(w.Alpha-4e-5) > 1e-12 {
		t.Errorf("adjusted alpha = %g, want 4e-5", w.Alpha)
	}
	// The unmeasured root keeps its constants; the original platform
	// is untouched.
	r, _ := adjusted.Machine("r")
	if r.Beta != 0.01 {
		t.Errorf("root beta changed to %g", r.Beta)
	}
	if p.Machines[1].Beta != 0.004 {
		t.Error("ApplyForecasts mutated its input")
	}
}

func TestApplyForecastsClampsInsaneValues(t *testing.T) {
	p := platform.Platform{
		Name: "mini",
		Root: "r",
		Machines: []platform.Machine{
			{Name: "r", CPUs: 1, Beta: 0.01},
			{Name: "w", CPUs: 1, Beta: 0.004, Alpha: 1e-5},
		},
	}
	m := New(8, nil)
	m.Observe(CPUResource("w"), 0, 0.0001) // essentially dead
	m.Observe(CPUResource("r"), 0, 5.0)    // "150% available" nonsense
	adjusted := ApplyForecasts(p, m)
	w, _ := adjusted.Machine("w")
	if w.Beta > 0.004/0.01+1e-9 {
		t.Errorf("beta exploded: %g", w.Beta)
	}
	r, _ := adjusted.Machine("r")
	if r.Beta != 0.01 {
		t.Errorf("over-unity availability sped the root up: %g", r.Beta)
	}
}

// TestMonitorRebalanceScenario is the end-to-end use the paper
// sketches: query the monitor just before a scatter, rebalance, and
// beat the stale distribution.
func TestMonitorRebalanceScenario(t *testing.T) {
	p := platform.Table1()
	const n = 100000

	// Calibrated distribution.
	procs, err := p.ProcessorsOrdered(platform.OrderDescendingBandwidth)
	if err != nil {
		t.Fatal(err)
	}
	calibrated, err := core.Heuristic(procs, n)
	if err != nil {
		t.Fatal(err)
	}

	// caseb picks up a background job: 40% availability, observed by
	// the daemon.
	m := New(64, nil)
	for i := 0; i < 30; i++ {
		m.Observe(CPUResource("caseb"), float64(i), 0.4)
	}
	loadedPlatform := ApplyForecasts(p, m)
	loadedProcs, err := loadedPlatform.ProcessorsOrdered(platform.OrderDescendingBandwidth)
	if err != nil {
		t.Fatal(err)
	}

	// The stale distribution on the loaded grid vs a fresh one. The
	// processor order is identical (alpha unchanged), so the
	// distributions are comparable index by index.
	stale := core.Makespan(loadedProcs, calibrated.Distribution)
	fresh, err := core.Heuristic(loadedProcs, n)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Makespan >= stale {
		t.Errorf("rebalancing did not help: fresh %g vs stale %g", fresh.Makespan, stale)
	}
}

func TestForecasterNames(t *testing.T) {
	for _, f := range DefaultForecasters() {
		if f.Name() == "" {
			t.Errorf("forecaster %T has no name", f)
		}
	}
}

func TestMonitorConcurrentSafety(t *testing.T) {
	m := New(64, nil)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				m.Observe(CPUResource("shared"), float64(i), 0.5)
				m.Forecast(CPUResource("shared"))
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	v, _, err := m.Forecast(CPUResource("shared"))
	if err != nil || math.Abs(v-0.5) > 1e-9 {
		t.Errorf("forecast = %g, %v", v, err)
	}
}

package serve

import (
	"context"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/core"
	"repro/internal/store"
)

// job is one admitted solve request. The handler that created it waits
// on done; the worker that claims it fills the result fields before
// closing done. Exactly one goroutine writes the fields, and only
// before the close, so waiters read them race-free.
type job struct {
	ctx   context.Context
	procs []core.Processor
	n     int
	sig   string

	done   chan struct{}
	status int
	resp   PlanResponse
	errmsg string
}

// finish publishes the job's outcome to its waiting handler.
func (j *job) finish(status int, resp PlanResponse, errmsg string) {
	j.status = status
	j.resp = resp
	j.errmsg = errmsg
	close(j.done)
}

// enqueue admits j to the bounded solve queue, shedding immediately —
// never blocking the handler — when the server is draining or the
// queue is full. It writes the shed response itself and reports
// whether the caller should wait on j.done.
//
// The draining check and the queue send happen under one critical
// section so no job can slip in after Drain observes the flag: once
// drainStarted is set, every enqueue fails, and whatever was already
// in the queue is bounded and gets rejected by the drain flush.
// The send itself is a select-with-default, so the lock is never held
// across a blocking channel operation.
func (s *Server) enqueue(w http.ResponseWriter, j *job) bool {
	s.mu.Lock()
	if s.drainStarted {
		s.stats.ShedDraining++
		s.mu.Unlock()
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: errServerClosed.Error()})
		return false
	}
	select {
	case s.queue <- j:
		s.mu.Unlock()
		return true
	default:
		s.stats.ShedQueueFull++
		s.mu.Unlock()
		w.Header().Set("Retry-After", strconv.Itoa(s.cfg.RetryAfterSeconds))
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{
			Error: fmt.Sprintf("solve queue saturated (%d deep); retry after backoff", cap(s.queue)),
		})
		return false
	}
}

// startWorkers launches the solver pool. Workers exit when Drain
// closes the draining channel; Drain then flushes what is left in the
// queue.
func (s *Server) startWorkers() {
	s.wg.Add(s.cfg.Workers)
	for i := 0; i < s.cfg.Workers; i++ {
		go s.worker()
	}
}

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case j := <-s.queue:
			s.run(j)
		case <-s.draining:
			return
		}
	}
}

// run executes one admitted job: shed it if its deadline already
// passed while queued, otherwise solve, persist, and answer.
func (s *Server) run(j *job) {
	select {
	case <-j.ctx.Done():
		// Expired (or abandoned) while queued: shed without touching
		// the engine. This is the load-shedding half of admission
		// control — a saturated server never spends solver time on
		// requests nobody is waiting for.
		s.count(func(st *Stats) { st.ShedExpired++ })
		j.finish(http.StatusGatewayTimeout, PlanResponse{}, "deadline expired while queued")
		return
	default:
	}

	res, info, err := s.solve(j.procs, j.n)
	if err != nil {
		s.count(func(st *Stats) { st.SolveErrors++ })
		j.finish(http.StatusUnprocessableEntity, PlanResponse{}, fmt.Sprintf("solve failed: %v", err))
		return
	}
	s.persist(j, res, info)
	resp := PlanResponse{
		Distribution: res.Distribution,
		Makespan:     res.Makespan,
		Processors:   procNames(j.procs),
		Source:       info.Source.String(),
		Coalesced:    info.Coalesced,
		Signature:    info.Signature,
	}
	if info.Policy != core.PolicyExact {
		resp.Policy = info.Policy.String()
		resp.Granularity = info.Granularity
		resp.Bound = info.Bound
		resp.LowerBound = info.LowerBound
	}
	j.finish(http.StatusOK, resp, "")
}

// persist appends a solved plan to the durable store. Coalesced and
// cache-hit repeats dedupe to no-ops inside Append. Persistence
// failures are counted, not fatal: the daemon keeps serving from the
// engine and recovers whatever prefix the WAL kept.
//
// Only exact solves are persisted: the store answers repeats verbatim
// with no way to carry an optimality band, and a daemon restarted with
// a different policy or granularity must never replay an approximate
// plan as if it were exact.
func (s *Server) persist(j *job, res core.Result, info core.SolveInfo) {
	if s.st == nil || j.sig == "" || info.Policy != core.PolicyExact {
		return
	}
	err := s.st.Append(storeEntry(j.sig, j.n, res))
	if err != nil {
		s.count(func(st *Stats) { st.PersistErrors++ })
	}
}

// Drain gracefully stops the server: new requests are rejected,
// in-flight solves run to completion, and everything still queued is
// answered with 503. Idempotent; safe to call concurrently. After
// Drain returns no goroutine owned by the server is running, so the
// caller may close the store.
func (s *Server) Drain() {
	s.mu.Lock()
	if s.drainStarted {
		s.mu.Unlock()
		<-s.drained
		return
	}
	s.drainStarted = true
	s.mu.Unlock()

	close(s.draining)
	s.wg.Wait()

	// Workers are gone; nothing else reads the queue, and enqueue has
	// rejected every request since drainStarted was set. Flush the
	// stragglers so no handler is left waiting on a job forever.
	for {
		select {
		case j := <-s.queue:
			s.count(func(st *Stats) { st.ShedDraining++ })
			j.finish(http.StatusServiceUnavailable, PlanResponse{}, errServerClosed.Error())
		default:
			close(s.drained)
			return
		}
	}
}

// storeEntry converts a solved result to its durable form.
func storeEntry(sig string, n int, res core.Result) store.Entry {
	return store.Entry{
		Sig:      sig,
		Items:    n,
		Makespan: res.Makespan,
		Dist:     res.Distribution,
	}
}

package serve

// Chaos tests for the daemon's crash-recovery and hostile-client
// contracts. The crash is simulated at the byte level — the WAL is cut
// mid-frame and corrupted exactly as a kill -9 or a bad sector would
// leave it — which makes the scenarios deterministic and runnable
// under -race in CI.

import (
	"bufio"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/store"
)

// TestChaosCrashRecovery is the acceptance scenario: a daemon serves
// and persists a batch of plans, dies mid-append with a corrupted
// tail, and a restarted daemon must answer every committed fingerprint
// from the recovered store, bit-identical to a fresh Algorithm 2 solve
// — while the plan lost to corruption is transparently re-solved.
func TestChaosCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "plans.wal")
	const k = 6

	// Phase A: a healthy daemon plans k distinct platforms.
	type served struct {
		req  PlanRequest
		resp PlanResponse
	}
	var batch []served
	{
		st, _, err := store.Open(walPath)
		if err != nil {
			t.Fatal(err)
		}
		s := NewServer(Config{Store: st})
		ts := httptest.NewServer(s)
		for i := 0; i < k; i++ {
			req := PlanRequest{Platform: testPlatform(i), Items: 2000 + 500*i}
			resp, body := postPlan(t, ts.URL, req)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("phase A solve %d: status %d, body %s", i, resp.StatusCode, body)
			}
			batch = append(batch, served{req: req, resp: decodePlan(t, body)})
		}
		// kill -9: no Drain, no Compact — the process just stops. The
		// test server and file handle are released so the "restarted"
		// daemon can take over the same WAL.
		ts.Close()
		s.Drain()
		st.Close()
	}

	// The crash scene: the last record takes a hit mid-payload and a
	// torn half-written frame dangles past it.
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-10] ^= 0x5a
	data = append(data, []byte("plan 120 0badc0de\nsig lin(0x1.8p-7)|half-written")...)
	if err := os.WriteFile(walPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	// Phase B: restart on the damaged WAL.
	st, info, err := store.Open(walPath)
	if err != nil {
		t.Fatalf("recovery must not error on a torn WAL: %v", err)
	}
	defer st.Close()
	if info.Records != k-1 {
		t.Fatalf("recovered %d records, want %d (last record corrupted)", info.Records, k-1)
	}
	if info.TornBytes == 0 {
		t.Fatal("recovery did not report the truncated tail")
	}
	s := NewServer(Config{Store: st})
	defer s.Drain()
	ts := httptest.NewServer(s)
	defer ts.Close()

	for i, sv := range batch {
		resp, body := postPlan(t, ts.URL, sv.req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("phase B solve %d: status %d, body %s", i, resp.StatusCode, body)
		}
		pr := decodePlan(t, body)

		// Committed plans come from the store; the corrupted one is
		// re-solved cold.
		wantSource := "store"
		if i == k-1 {
			wantSource = "cold"
		}
		if pr.Source != wantSource {
			t.Errorf("restart solve %d: source = %q, want %q", i, pr.Source, wantSource)
		}

		// Bit-identity, twice over: against the pre-crash daemon's
		// answer and against a fresh from-scratch solve.
		procs, err := sv.req.Platform.ProcessorsOrdered(platform.OrderDescendingBandwidth)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := core.Algorithm2(procs, sv.req.Items)
		if err != nil {
			t.Fatal(err)
		}
		if pr.Makespan != sv.resp.Makespan || pr.Makespan != fresh.Makespan {
			t.Errorf("restart solve %d: makespan %v, pre-crash %v, fresh %v", i, pr.Makespan, sv.resp.Makespan, fresh.Makespan)
		}
		for j := range fresh.Distribution {
			if pr.Distribution[j] != fresh.Distribution[j] || pr.Distribution[j] != sv.resp.Distribution[j] {
				t.Fatalf("restart solve %d: distribution %v, pre-crash %v, fresh %v",
					i, pr.Distribution, sv.resp.Distribution, fresh.Distribution)
			}
		}
	}

	stats := s.Stats()
	if stats.StoreHits != int64(k-1) {
		t.Fatalf("restart store hits = %d, want %d", stats.StoreHits, k-1)
	}
	if stats.Engine.ColdSolves != 1 {
		t.Fatalf("restart cold solves = %d, want 1 (only the lost plan)", stats.Engine.ColdSolves)
	}
	// The re-solve re-persisted the lost plan: the store is whole again.
	if st.Len() != k {
		t.Fatalf("store holds %d plans after re-solve, want %d", st.Len(), k)
	}
}

// TestChaosCrashLoop crashes the daemon repeatedly, each time with a
// fresh torn tail, and checks that the committed set only ever grows:
// no crash loses a plan that an earlier incarnation served.
func TestChaosCrashLoop(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "plans.wal")
	committed := map[string]PlanResponse{}

	for round := 0; round < 4; round++ {
		st, _, err := store.Open(walPath)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if st.Len() < len(committed) {
			t.Fatalf("round %d: store recovered %d plans, committed %d — a crash lost data", round, st.Len(), len(committed))
		}
		s := NewServer(Config{Store: st})
		ts := httptest.NewServer(s)

		// Every prior commitment must still be served verbatim.
		for key, want := range committed {
			var seed, items int
			fmt.Sscanf(key, "%d/%d", &seed, &items)
			req := PlanRequest{Platform: testPlatform(seed), Items: items}
			resp, body := postPlan(t, ts.URL, req)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("round %d, key %s: status %d", round, key, resp.StatusCode)
			}
			pr := decodePlan(t, body)
			if pr.Makespan != want.Makespan || sum(pr.Distribution) != items {
				t.Fatalf("round %d, key %s: answer drifted: %v vs %v", round, key, pr, want)
			}
		}

		// Two new plans this round.
		for j := 0; j < 2; j++ {
			seed, items := 10*round+j, 1500+300*round+100*j
			resp, body := postPlan(t, ts.URL, PlanRequest{Platform: testPlatform(seed), Items: items})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("round %d new plan %d: status %d", round, j, resp.StatusCode)
			}
			committed[fmt.Sprintf("%d/%d", seed, items)] = decodePlan(t, body)
		}

		ts.Close()
		s.Drain()
		st.Close()

		// Crash: tear the tail with a partial frame of round-varying
		// length. The torn bytes are always past the last fsynced
		// record, so nothing committed is at risk — which is exactly
		// the property the next round verifies.
		data, err := os.ReadFile(walPath)
		if err != nil {
			t.Fatal(err)
		}
		torn := []byte(fmt.Sprintf("plan %d 12345678\nsig partial-round-%d", 100+round, round))
		data = append(data, torn[:len(torn)-round*3]...)
		if err := os.WriteFile(walPath, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestChaosHostileClients runs stalled writers (half-sent requests),
// stalled readers (full request, never reads the answer), and an
// abruptly closed connection against the daemon while healthy clients
// keep planning. The bounded queue and per-request contexts must keep
// the healthy path unaffected.
func TestChaosHostileClients(t *testing.T) {
	s := NewServer(Config{Workers: 2, QueueDepth: 8})
	defer s.Drain()
	ts := httptest.NewServer(s)
	defer ts.Close()
	addr := ts.Listener.Addr().String()

	// Stalled writers: open the socket, send half a request, go quiet.
	var stalled []net.Conn
	for i := 0; i < 4; i++ {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(c, "POST /v1/plan HTTP/1.1\r\nHost: chaos\r\nContent-Type: application/json\r\nContent-Length: 4096\r\n\r\n{\"platform\"")
		stalled = append(stalled, c)
	}
	defer func() {
		for _, c := range stalled {
			c.Close()
		}
	}()

	// A client that vanishes mid-request.
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(c, "POST /v1/plan HTTP/1.1\r\nHost: chaos\r\n")
	c.Close()

	// Stalled reader: sends a complete request, never reads the reply.
	body := mustBody(t, PlanRequest{Platform: testPlatform(42), Items: 3000})
	lazy, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(lazy, "POST /v1/plan HTTP/1.1\r\nHost: chaos\r\nContent-Type: application/json\r\nContent-Length: %d\r\n\r\n%s", len(body), body)
	defer lazy.Close()

	// Healthy load proceeds at full service while the hostiles squat.
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// A well-behaved client backs off on 503 and retries; the
			// daemon promises those retries eventually land.
			for attempt := 0; ; attempt++ {
				resp, body := postPlan(t, ts.URL, PlanRequest{Platform: testPlatform(i % 4), Items: 1000 + 10*i})
				if resp.StatusCode == http.StatusOK {
					return
				}
				if resp.StatusCode != http.StatusServiceUnavailable || attempt == 50 {
					errs <- fmt.Errorf("healthy client %d: status %d after %d attempts, body %s", i, resp.StatusCode, attempt, body)
					return
				}
				time.Sleep(10 * time.Millisecond)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Planned < 16 {
		t.Fatalf("planned = %d, want >= 16 healthy responses", st.Planned)
	}

	// The stalled reader's solve was real: read it now and check it.
	lazy.SetReadDeadline(time.Now().Add(5 * time.Second))
	br := bufio.NewReader(lazy)
	resp, err := http.ReadResponse(br, nil)
	if err != nil {
		t.Fatalf("stalled reader finally reading: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stalled reader's plan = %d, want 200", resp.StatusCode)
	}
}

package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/store"
)

// testPlatform builds a small deterministic two-site platform whose
// cost constants vary with seed, so distinct seeds give distinct
// signatures.
func testPlatform(seed int) platform.Platform {
	return platform.Platform{
		Name: fmt.Sprintf("test-%d", seed),
		Machines: []platform.Machine{
			{Name: "root", CPUs: 1, Beta: 0.010 + 0.001*float64(seed)},
			{Name: "fast", CPUs: 2, Beta: 0.004, Alpha: 1e-5 * float64(1+seed%3)},
			{Name: "slow", CPUs: 1, Beta: 0.016, Alpha: 5e-5 * float64(1+seed%2)},
		},
		Root: "root",
	}
}

func postPlan(t *testing.T, url string, req PlanRequest) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/plan", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/plan: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func decodePlan(t *testing.T, data []byte) PlanResponse {
	t.Helper()
	var pr PlanResponse
	if err := json.Unmarshal(data, &pr); err != nil {
		t.Fatalf("decode plan response %q: %v", data, err)
	}
	return pr
}

func sum(dist []int) int {
	total := 0
	for _, d := range dist {
		total += d
	}
	return total
}

func TestServePlanHappyPath(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "plans.wal")
	st, _, err := store.Open(walPath)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	s := NewServer(Config{Store: st})
	defer s.Drain()
	ts := httptest.NewServer(s)
	defer ts.Close()

	const n = 4000
	req := PlanRequest{Platform: testPlatform(1), Items: n}
	resp, body := postPlan(t, ts.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	pr := decodePlan(t, body)
	if sum(pr.Distribution) != n {
		t.Fatalf("distribution %v sums to %d, want %d", pr.Distribution, sum(pr.Distribution), n)
	}
	if pr.Source != "cold" {
		t.Fatalf("first solve source = %q, want cold", pr.Source)
	}
	if pr.Signature == "" {
		t.Fatal("linear-cost platform must be fingerprintable")
	}
	if len(pr.Processors) != 4 || pr.Processors[len(pr.Processors)-1] != "root" {
		t.Fatalf("processors = %v, want 4 with root last", pr.Processors)
	}
	// Bit-identity with a direct solver call on the same ordering.
	procs, err := req.Platform.ProcessorsOrdered(platform.OrderDescendingBandwidth)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Algorithm2(procs, n)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Makespan != want.Makespan {
		t.Fatalf("served makespan %v != direct %v", pr.Makespan, want.Makespan)
	}
	for i := range want.Distribution {
		if pr.Distribution[i] != want.Distribution[i] {
			t.Fatalf("served distribution %v != direct %v", pr.Distribution, want.Distribution)
		}
	}

	// The identical request is now answered from the durable store
	// without touching the engine.
	resp2, body2 := postPlan(t, ts.URL, req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("repeat status = %d", resp2.StatusCode)
	}
	pr2 := decodePlan(t, body2)
	if pr2.Source != "store" {
		t.Fatalf("repeat source = %q, want store", pr2.Source)
	}
	if pr2.Makespan != pr.Makespan || sum(pr2.Distribution) != n {
		t.Fatalf("store answer %v/%v differs from solved %v/%v", pr2.Distribution, pr2.Makespan, pr.Distribution, pr.Makespan)
	}

	// A different item count misses the store and resolves warm.
	resp3, body3 := postPlan(t, ts.URL, PlanRequest{Platform: testPlatform(1), Items: n / 2})
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("smaller-n status = %d", resp3.StatusCode)
	}
	if pr3 := decodePlan(t, body3); pr3.Source != "cache" && pr3.Source != "warm" {
		t.Fatalf("smaller-n source = %q, want cache or warm", pr3.Source)
	}

	stats := s.Stats()
	if stats.Requests != 3 || stats.Planned != 3 || stats.StoreHits != 1 {
		t.Fatalf("stats = %+v, want 3 requests, 3 planned, 1 store hit", stats)
	}
	if stats.StoreEntries != 2 {
		t.Fatalf("store entries = %d, want 2", stats.StoreEntries)
	}
	if stats.Engine.ColdSolves != 1 {
		t.Fatalf("engine cold solves = %d, want 1", stats.Engine.ColdSolves)
	}
}

func TestServeHealthAndStats(t *testing.T) {
	s := NewServer(Config{})
	defer s.Drain()
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	var stats Stats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatalf("statsz decode: %v", err)
	}
	resp.Body.Close()
	if stats.QueueCapacity != 64 || stats.Workers != 4 {
		t.Fatalf("defaults = %+v, want queue 64, workers 4", stats)
	}
	if stats.StoreEntries != -1 {
		t.Fatalf("store entries without a store = %d, want -1", stats.StoreEntries)
	}
}

func TestServePlanValidation(t *testing.T) {
	s := NewServer(Config{MaxItems: 1000})
	defer s.Drain()
	ts := httptest.NewServer(s)
	defer ts.Close()

	good := testPlatform(0)
	cases := []struct {
		name string
		body string
		want int
	}{
		{"malformed json", `{"platform":`, http.StatusBadRequest},
		{"unknown field", `{"platfrom": {}, "items": 5}`, http.StatusBadRequest},
		{"negative items", mustBody(t, PlanRequest{Platform: good, Items: -1}), http.StatusBadRequest},
		{"items over cap", mustBody(t, PlanRequest{Platform: good, Items: 5000}), http.StatusBadRequest},
		{"negative timeout", mustBody(t, PlanRequest{Platform: good, Items: 5, TimeoutMs: -3}), http.StatusBadRequest},
		{"unknown ordering", mustBody(t, PlanRequest{Platform: good, Items: 5, Ordering: "random"}), http.StatusBadRequest},
		{"no machines", `{"platform": {"name": "x"}, "items": 5}`, http.StatusBadRequest},
		{"rootless", `{"platform": {"machines": [{"name": "a", "cpus": 1, "beta": 0.01}]}, "items": 5}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/plan", "application/json", bytes.NewReader([]byte(tc.body)))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status = %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/plan")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/plan = %d, want 405", resp.StatusCode)
	}

	if got := s.Stats().BadRequests; got != int64(len(cases)) {
		t.Fatalf("BadRequests = %d, want %d", got, len(cases))
	}
}

func mustBody(t *testing.T, req PlanRequest) string {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestServeOrderings(t *testing.T) {
	s := NewServer(Config{})
	defer s.Drain()
	ts := httptest.NewServer(s)
	defer ts.Close()

	p := testPlatform(2)
	for _, ord := range []string{"", "as-listed", "descending-bandwidth", "ascending-bandwidth"} {
		resp, body := postPlan(t, ts.URL, PlanRequest{Platform: p, Items: 1000, Ordering: ord})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ordering %q: status %d, body %s", ord, resp.StatusCode, body)
		}
		pr := decodePlan(t, body)
		policy := platform.OrderDescendingBandwidth
		switch ord {
		case "as-listed":
			policy = platform.OrderAsListed
		case "ascending-bandwidth":
			policy = platform.OrderAscendingBandwidth
		}
		procs, err := p.ProcessorsOrdered(policy)
		if err != nil {
			t.Fatal(err)
		}
		for i, proc := range procs {
			if pr.Processors[i] != proc.Name {
				t.Fatalf("ordering %q: served order %v, want %v", ord, pr.Processors, procNames(procs))
			}
		}
	}
}

// gatedSolver blocks each solve until released, exposing the admission
// machinery to deterministic tests.
type gatedSolver struct {
	started chan string
	release chan struct{}
}

func (g *gatedSolver) solve(procs []core.Processor, n int) (core.Result, core.SolveInfo, error) {
	g.started <- fmt.Sprintf("n=%d", n)
	<-g.release
	dist := make([]int, len(procs))
	dist[0] = n
	return core.Result{Distribution: dist, Makespan: float64(n)}, core.SolveInfo{Source: core.SourceCold}, nil
}

// TestServeSaturationShedding fills the single worker and the
// one-deep queue, then asserts the next request is shed immediately
// with 503 + Retry-After while the admitted ones still complete.
func TestServeSaturationShedding(t *testing.T) {
	g := &gatedSolver{started: make(chan string, 8), release: make(chan struct{})}
	s := NewServer(Config{Workers: 1, QueueDepth: 1, Solve: g.solve, RetryAfterSeconds: 7})
	ts := httptest.NewServer(s)
	defer ts.Close()

	var wg sync.WaitGroup
	codes := make([]int, 2)
	for i := range codes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, _ := postPlan(t, ts.URL, PlanRequest{Platform: testPlatform(i), Items: 100 + i})
			codes[i] = resp.StatusCode
		}(i)
	}
	// Wait until the worker is inside the first solve, then give the
	// queue time to hold the second request.
	<-g.started
	waitFor(t, func() bool { return s.Stats().QueueDepth == 1 })

	resp, body := postPlan(t, ts.URL, PlanRequest{Platform: testPlatform(9), Items: 900})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated status = %d, body %s", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "7" {
		t.Fatalf("Retry-After = %q, want 7", ra)
	}

	close(g.release)
	<-g.started // second solve begins once the worker frees up
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusOK {
			t.Fatalf("admitted request %d got %d", i, code)
		}
	}
	st := s.Stats()
	if st.ShedQueueFull != 1 || st.Planned != 2 {
		t.Fatalf("stats = %+v, want 1 shed, 2 planned", st)
	}
	s.Drain()
}

// TestServeQueuedDeadlineShed: a request whose deadline expires while
// queued gets 504 from its handler, and the worker sheds it without
// running the solver.
func TestServeQueuedDeadlineShed(t *testing.T) {
	g := &gatedSolver{started: make(chan string, 8), release: make(chan struct{})}
	s := NewServer(Config{Workers: 1, QueueDepth: 4, Solve: g.solve})
	ts := httptest.NewServer(s)
	defer ts.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		postPlan(t, ts.URL, PlanRequest{Platform: testPlatform(0), Items: 100})
	}()
	<-g.started // the worker is now pinned

	resp, body := postPlan(t, ts.URL, PlanRequest{Platform: testPlatform(1), Items: 200, TimeoutMs: 50})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("expired-in-queue status = %d, body %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("timeout response missing Retry-After")
	}

	close(g.release)
	wg.Wait()
	// The worker must shed the expired job rather than solve it: only
	// the first request ever reaches the solver.
	waitFor(t, func() bool { return s.Stats().ShedExpired == 1 })
	select {
	case got := <-g.started:
		t.Fatalf("expired job reached the solver: %s", got)
	default:
	}
	st := s.Stats()
	if st.Abandoned != 1 || st.Planned != 1 {
		t.Fatalf("stats = %+v, want 1 abandoned, 1 planned", st)
	}
	s.Drain()
}

// TestServeDrain exercises the graceful-drain contract: in-flight
// solves finish and are delivered, new requests are rejected, health
// flips to draining, and Drain is idempotent.
func TestServeDrain(t *testing.T) {
	g := &gatedSolver{started: make(chan string, 8), release: make(chan struct{})}
	s := NewServer(Config{Workers: 1, QueueDepth: 4, Solve: g.solve})
	ts := httptest.NewServer(s)
	defer ts.Close()

	inflight := make(chan int, 1)
	go func() {
		resp, _ := postPlan(t, ts.URL, PlanRequest{Platform: testPlatform(0), Items: 500})
		inflight <- resp.StatusCode
	}()
	<-g.started

	drained := make(chan struct{})
	go func() {
		s.Drain()
		close(drained)
	}()
	waitFor(t, func() bool { return s.Stats().Draining })

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz = %d, want 503", resp.StatusCode)
	}
	resp, body := postPlan(t, ts.URL, PlanRequest{Platform: testPlatform(1), Items: 100})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("plan during drain = %d, body %s", resp.StatusCode, body)
	}

	select {
	case <-drained:
		t.Fatal("Drain returned while a solve was in flight")
	default:
	}
	close(g.release)
	<-drained
	if code := <-inflight; code != http.StatusOK {
		t.Fatalf("in-flight request got %d, want 200 delivered before drain completes", code)
	}
	st := s.Stats()
	if st.ShedDraining != 1 || st.Planned != 1 {
		t.Fatalf("stats = %+v, want 1 shed draining, 1 planned", st)
	}
	s.Drain() // idempotent, returns immediately
}

// TestServeCoarsePolicyNotPersisted pins the persistence gate: a
// daemon running a coarse policy reports the band on the wire but
// never writes approximate plans to the WAL, while solves below the
// coarse threshold stay exact and are persisted as before.
func TestServeCoarsePolicyNotPersisted(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "plans.wal")
	st, _, err := store.Open(walPath)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	eng := core.NewEngineConfig(core.EngineConfig{
		Policy:         core.PolicyCoarseRefine,
		Granularity:    16,
		CoarseMinItems: 1000,
	})
	s := NewServer(Config{Engine: eng, Store: st})
	defer s.Drain()
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Above the coarse threshold: answered approximately, with the
	// policy and band on the wire, and NOT appended to the store.
	resp, body := postPlan(t, ts.URL, PlanRequest{Platform: testPlatform(1), Items: 5000})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	pr := decodePlan(t, body)
	if pr.Source != "coarse" || pr.Policy != "coarse-refine" || pr.Granularity != 16 {
		t.Fatalf("coarse response = %+v, want coarse source with policy and granularity", pr)
	}
	if pr.Bound < 0 || pr.LowerBound <= 0 || pr.LowerBound > pr.Makespan {
		t.Fatalf("band fields inconsistent: bound %g, lower %g, makespan %g", pr.Bound, pr.LowerBound, pr.Makespan)
	}
	if sum(pr.Distribution) != 5000 {
		t.Fatalf("distribution %v sums to %d, want 5000", pr.Distribution, sum(pr.Distribution))
	}
	if got := s.Stats().StoreEntries; got != 0 {
		t.Fatalf("store entries after coarse solve = %d, want 0", got)
	}

	// Below the threshold the same daemon solves exactly: no band
	// fields, and the plan is durable.
	resp2, body2 := postPlan(t, ts.URL, PlanRequest{Platform: testPlatform(1), Items: 500})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("exact status = %d, body %s", resp2.StatusCode, body2)
	}
	pr2 := decodePlan(t, body2)
	if pr2.Policy != "" || pr2.Bound != 0 || pr2.Granularity != 0 {
		t.Fatalf("exact response carries band fields: %+v", pr2)
	}
	if got := s.Stats().StoreEntries; got != 1 {
		t.Fatalf("store entries after exact solve = %d, want 1", got)
	}
	if stats := s.Stats(); stats.Engine.CoarseSolves != 1 || stats.Engine.ColdSolves != 1 {
		t.Fatalf("engine stats = %+v, want one coarse and one cold solve", stats.Engine)
	}
}

// waitFor polls cond (test-side timing only; the daemon itself reads
// no clock).
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Package serve implements scatterd's HTTP planning service: a
// long-lived daemon wrapping core.Engine that stays correct and
// responsive under concurrent load, overload, and crashes.
//
// Three endpoints:
//
//	POST /v1/plan   — solve a distribution for {platform, items}
//	GET  /healthz   — liveness ("ok", or 503 "draining" during drain)
//	GET  /statsz    — JSON counters incl. core.EngineStats
//
// The robustness model (DESIGN.md §14):
//
//   - Admission control: solve requests pass through a bounded queue
//     served by a fixed worker pool. A full queue sheds immediately
//     with 503 + Retry-After instead of building an unbounded backlog;
//     a request whose deadline expires while queued is shed without
//     ever reaching the engine. Deadlines propagate from the client
//     (request timeout field, capped by the server) and from client
//     disconnects via the request context.
//   - Durability: every fingerprintable solve is appended to the
//     durable plan store (internal/store), and exact (signature,
//     items) repeats — including after a restart — are answered from
//     it in O(1) without touching the engine.
//   - Graceful drain: Drain stops admission, lets in-flight solves
//     finish, rejects queued requests cleanly, and only then returns,
//     so SIGTERM never tears a WAL append or strands a caller.
//
// The package deliberately reads no wall clock: all timing flows
// through request contexts (stdlib deadline machinery), which keeps
// the daemon's logic deterministic under test and inside the repo's
// simulated-time lint discipline.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/store"
)

// SolveFunc answers a distribution request. The default is an
// engine-backed solver; tests inject gates and failures through it.
type SolveFunc func(procs []core.Processor, n int) (core.Result, core.SolveInfo, error)

// Config configures a Server. The zero value serves with defaults.
type Config struct {
	// Engine is the incremental solver; a fresh one is created when
	// nil.
	Engine *core.Engine
	// Store is the durable plan store; nil disables persistence.
	Store *store.Store
	// QueueDepth bounds the solve queue (default 64). Requests beyond
	// it are shed with 503.
	QueueDepth int
	// Workers is the number of concurrent solver workers (default 4).
	Workers int
	// DefaultTimeout bounds a request that carries no timeout of its
	// own; 0 means no server-imposed deadline.
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested timeouts (default 5m).
	MaxTimeout time.Duration
	// MaxItems rejects larger solve requests (default 10,000,000).
	MaxItems int
	// MaxProcessors rejects wider platforms (default 4096).
	MaxProcessors int
	// MaxBodyBytes caps the request body (default 1 MiB).
	MaxBodyBytes int64
	// RetryAfterSeconds is the Retry-After hint on shed responses
	// (default 1).
	RetryAfterSeconds int
	// Solve overrides the engine-backed solver (tests).
	Solve SolveFunc
}

// Stats is the /statsz payload.
type Stats struct {
	// Requests counts POST /v1/plan requests accepted for parsing.
	Requests int64 `json:"requests"`
	// Planned counts 200 responses.
	Planned int64 `json:"planned"`
	// StoreHits counts plans answered from the durable store without
	// touching the engine.
	StoreHits int64 `json:"storeHits"`
	// ShedQueueFull counts requests rejected because the solve queue
	// was saturated.
	ShedQueueFull int64 `json:"shedQueueFull"`
	// ShedExpired counts queued requests whose deadline passed before
	// a worker picked them up.
	ShedExpired int64 `json:"shedExpired"`
	// ShedDraining counts requests rejected during drain.
	ShedDraining int64 `json:"shedDraining"`
	// BadRequests counts malformed or out-of-bounds requests.
	BadRequests int64 `json:"badRequests"`
	// SolveErrors counts solver rejections of admitted requests.
	SolveErrors int64 `json:"solveErrors"`
	// PersistErrors counts WAL append failures (non-fatal; the daemon
	// keeps serving from the engine).
	PersistErrors int64 `json:"persistErrors"`
	// Abandoned counts requests whose caller's deadline fired while a
	// worker was still solving; the solve completes and warms the
	// cache, but the response was never delivered.
	Abandoned int64 `json:"abandoned"`
	// QueueDepth is the instantaneous queue length.
	QueueDepth int `json:"queueDepth"`
	// QueueCapacity is the configured bound.
	QueueCapacity int `json:"queueCapacity"`
	// Workers is the solver pool size.
	Workers int `json:"workers"`
	// Draining reports that Drain has begun.
	Draining bool `json:"draining"`
	// StoreEntries is the number of live plans in the durable store
	// (-1 without a store).
	StoreEntries int `json:"storeEntries"`
	// Engine is the solver engine's own counters.
	Engine core.EngineStats `json:"engine"`
}

// PlanRequest is the POST /v1/plan body.
type PlanRequest struct {
	// Platform is the grid description (internal/platform JSON form).
	Platform platform.Platform `json:"platform"`
	// Items is the number of items to distribute.
	Items int `json:"items"`
	// Ordering optionally selects the service order: "as-listed",
	// "descending-bandwidth" (default; the paper's Theorem 3 policy),
	// or "ascending-bandwidth".
	Ordering string `json:"ordering,omitempty"`
	// TimeoutMs optionally bounds how long the caller is willing to
	// wait; the server sheds the request once it expires.
	TimeoutMs int `json:"timeoutMs,omitempty"`
}

// PlanResponse is the POST /v1/plan success body.
type PlanResponse struct {
	// Distribution is the per-processor item share, service order.
	Distribution []int `json:"distribution"`
	// Makespan is the predicted completion time (virtual seconds).
	Makespan float64 `json:"makespan"`
	// Processors names the processors in service order (root last).
	Processors []string `json:"processors"`
	// Source reports how the plan was produced: "store", "cache",
	// "warm", "cold", "coarse", or "fallback".
	Source string `json:"source"`
	// Coalesced reports the solve was shared with an identical
	// concurrent request.
	Coalesced bool `json:"coalesced,omitempty"`
	// Signature is the canonical platform signature ("" when the
	// platform is not fingerprintable).
	Signature string `json:"signature,omitempty"`
	// Policy is set on approximate answers ("coarse-refine" or
	// "coarse-only"); exact plans omit it.
	Policy string `json:"policy,omitempty"`
	// Granularity is the coarse grid step of an approximate answer.
	Granularity int `json:"granularity,omitempty"`
	// Bound is the machine-checked optimality band of an approximate
	// answer: the makespan exceeds the optimum by at most Bound.
	Bound float64 `json:"bound,omitempty"`
	// LowerBound is the proven lower bound on the optimal makespan
	// backing Bound.
	LowerBound float64 `json:"lowerBound,omitempty"`
}

// errorResponse is every non-200 body.
type errorResponse struct {
	Error string `json:"error"`
}

// Server is the scatterd HTTP service. Create with NewServer; it is an
// http.Handler. Safe for concurrent use.
type Server struct {
	cfg    Config
	engine *core.Engine
	st     *store.Store
	solve  SolveFunc
	mux    *http.ServeMux

	queue    chan *job
	draining chan struct{}
	drained  chan struct{}
	wg       sync.WaitGroup

	mu           sync.Mutex
	drainStarted bool  //scatterlint:guardedby mu
	stats        Stats //scatterlint:guardedby mu
}

// NewServer builds the service and starts its worker pool. Callers own
// the store's lifecycle: Drain the server, then close the store.
func NewServer(cfg Config) *Server {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 5 * time.Minute
	}
	if cfg.MaxItems <= 0 {
		cfg.MaxItems = 10_000_000
	}
	if cfg.MaxProcessors <= 0 {
		cfg.MaxProcessors = 4096
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	if cfg.RetryAfterSeconds <= 0 {
		cfg.RetryAfterSeconds = 1
	}
	s := &Server{
		cfg:      cfg,
		engine:   cfg.Engine,
		st:       cfg.Store,
		solve:    cfg.Solve,
		queue:    make(chan *job, cfg.QueueDepth),
		draining: make(chan struct{}),
		drained:  make(chan struct{}),
	}
	if s.engine == nil {
		s.engine = core.NewEngine(0)
	}
	if s.solve == nil {
		s.solve = s.engine.SolveDetailed
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/plan", s.handlePlan)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/statsz", s.handleStatsz)
	s.startWorkers()
	return s
}

// Engine returns the server's solver engine.
func (s *Server) Engine() *core.Engine { return s.engine }

// ServeHTTP dispatches to the daemon's endpoints.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Stats snapshots the server's counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	st := s.stats
	st.Draining = s.drainStarted
	s.mu.Unlock()
	st.QueueDepth = len(s.queue)
	st.QueueCapacity = cap(s.queue)
	st.Workers = s.cfg.Workers
	st.StoreEntries = -1
	if s.st != nil {
		st.StoreEntries = s.st.Len()
	}
	st.Engine = s.engine.Stats()
	return st
}

// count mutates the counter block under the stats lock.
func (s *Server) count(f func(*Stats)) {
	s.mu.Lock()
	f(&s.stats)
	s.mu.Unlock()
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.drainStarted
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if draining {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// handlePlan parses, validates, and admits a solve request, then waits
// for its worker (or its deadline) on behalf of the client.
func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST only"})
		return
	}
	s.count(func(st *Stats) { st.Requests++ })

	var req PlanRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.badRequest(w, fmt.Sprintf("bad request body: %v", err))
		return
	}
	procs, errmsg := s.admitRequest(req)
	if errmsg != "" {
		s.badRequest(w, errmsg)
		return
	}

	sig, _ := core.PlatformSignature(procs)
	if sig != "" && s.st != nil {
		if e, ok := s.st.Get(sig, req.Items); ok {
			s.count(func(st *Stats) { st.StoreHits++; st.Planned++ })
			writeJSON(w, http.StatusOK, PlanResponse{
				Distribution: e.Dist,
				Makespan:     e.Makespan,
				Processors:   procNames(procs),
				Source:       "store",
				Signature:    sig,
			})
			return
		}
	}

	ctx := r.Context()
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMs > 0 {
		timeout = time.Duration(req.TimeoutMs) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	j := &job{ctx: ctx, procs: procs, n: req.Items, sig: sig, done: make(chan struct{})}
	if !s.enqueue(w, j) {
		return
	}
	select {
	case <-j.done:
		if j.status == http.StatusOK {
			s.count(func(st *Stats) { st.Planned++ })
			writeJSON(w, http.StatusOK, j.resp)
			return
		}
		if j.status == http.StatusServiceUnavailable || j.status == http.StatusGatewayTimeout {
			w.Header().Set("Retry-After", strconv.Itoa(s.cfg.RetryAfterSeconds))
		}
		writeJSON(w, j.status, errorResponse{Error: j.errmsg})
	case <-ctx.Done():
		// The caller's budget ran out while the solve was still in
		// flight. The worker finishes and warms the cache; this caller
		// gets a timeout now.
		s.count(func(st *Stats) { st.Abandoned++ })
		w.Header().Set("Retry-After", strconv.Itoa(s.cfg.RetryAfterSeconds))
		writeJSON(w, http.StatusGatewayTimeout, errorResponse{Error: "deadline exceeded before a plan was ready; retry to hit the warmed cache"})
	}
}

// admitRequest validates the request and expands the platform into
// service-ordered processors, returning an error message for 400s.
func (s *Server) admitRequest(req PlanRequest) ([]core.Processor, string) {
	if req.Items < 0 {
		return nil, fmt.Sprintf("items = %d, want >= 0", req.Items)
	}
	if req.Items > s.cfg.MaxItems {
		return nil, fmt.Sprintf("items = %d exceeds the admission cap %d", req.Items, s.cfg.MaxItems)
	}
	if req.TimeoutMs < 0 {
		return nil, fmt.Sprintf("timeoutMs = %d, want >= 0", req.TimeoutMs)
	}
	var policy platform.Ordering
	switch req.Ordering {
	case "", "descending-bandwidth":
		policy = platform.OrderDescendingBandwidth
	case "as-listed":
		policy = platform.OrderAsListed
	case "ascending-bandwidth":
		policy = platform.OrderAscendingBandwidth
	default:
		return nil, fmt.Sprintf("unknown ordering %q", req.Ordering)
	}
	procs, err := req.Platform.ProcessorsOrdered(policy)
	if err != nil {
		return nil, err.Error()
	}
	if len(procs) > s.cfg.MaxProcessors {
		return nil, fmt.Sprintf("%d processors exceed the admission cap %d", len(procs), s.cfg.MaxProcessors)
	}
	return procs, ""
}

func (s *Server) badRequest(w http.ResponseWriter, msg string) {
	s.count(func(st *Stats) { st.BadRequests++ })
	writeJSON(w, http.StatusBadRequest, errorResponse{Error: msg})
}

func procNames(procs []core.Processor) []string {
	names := make([]string, len(procs))
	for i, p := range procs {
		names[i] = p.Name
	}
	return names
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		// The client is gone or stalled; nothing useful left to do.
		_ = err
	}
}

var errServerClosed = errors.New("serve: server draining")

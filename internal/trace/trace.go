// Package trace renders scatter timelines and experiment tables as
// text: ASCII Gantt charts (the shape of the paper's Figures 1-4),
// per-processor summary tables, and TSV series for external plotting.
package trace

import (
	"fmt"
	"strings"

	"repro/internal/schedule"
)

// Gantt renders the timeline as one row per processor with a shared
// horizontal time axis of the given width: '.' marks idle time, '='
// receiving, '#' computing. This is the picture of the paper's Figure 1
// (the "stair effect" is the growing '.' prefix).
func Gantt(tl schedule.Timeline, width int) string {
	if width < 10 {
		width = 10
	}
	if tl.Makespan <= 0 || len(tl.Procs) == 0 {
		return "(empty timeline)\n"
	}
	nameWidth := 0
	for _, p := range tl.Procs {
		if len(p.Name) > nameWidth {
			nameWidth = len(p.Name)
		}
	}
	scale := float64(width) / tl.Makespan
	var sb strings.Builder
	for _, p := range tl.Procs {
		fmt.Fprintf(&sb, "%-*s |", nameWidth, p.Name)
		row := make([]byte, width)
		for i := range row {
			row[i] = ' '
		}
		fill(row, 0, p.Recv.Start*scale, '.')
		fill(row, p.Recv.Start*scale, p.Recv.End*scale, '=')
		fill(row, p.Comp.Start*scale, p.Comp.End*scale, '#')
		sb.Write(row)
		fmt.Fprintf(&sb, "| %8.1fs\n", p.Finish())
	}
	fmt.Fprintf(&sb, "%-*s  %s\n", nameWidth, "", axis(width, tl.Makespan))
	return sb.String()
}

// fill paints [from, to) columns (fractional positions) with ch,
// guaranteeing at least one cell for non-empty segments.
func fill(row []byte, from, to float64, ch byte) {
	if to <= from {
		return
	}
	lo, hi := int(from), int(to)
	if hi == lo {
		hi = lo + 1
	}
	for i := lo; i < hi && i < len(row); i++ {
		row[i] = ch
	}
}

// axis renders a simple time axis legend.
func axis(width int, makespan float64) string {
	left := "0"
	right := fmt.Sprintf("%.0fs", makespan)
	if width < len(left)+len(right)+2 {
		return right
	}
	return left + strings.Repeat("-", width-len(left)-len(right)) + right
}

// SummaryTable renders the per-processor numbers behind the paper's
// bar charts: data items, communication time, idle time and total
// (finish) time.
func SummaryTable(tl schedule.Timeline) string {
	rows := make([][]string, 0, len(tl.Procs))
	for _, p := range tl.Procs {
		rows = append(rows, []string{
			p.Name,
			fmt.Sprintf("%d", p.Items),
			fmt.Sprintf("%.2f", p.CommTime()),
			fmt.Sprintf("%.2f", p.Idle()),
			fmt.Sprintf("%.2f", p.Finish()),
		})
	}
	return Table([]string{"processor", "items", "comm(s)", "idle(s)", "total(s)"}, rows)
}

// Table renders rows under headers with column alignment. Numeric-ish
// columns (everything except the first) are right-aligned.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			if i == 0 {
				fmt.Fprintf(&sb, "%-*s", widths[i], cell)
			} else {
				fmt.Fprintf(&sb, "%*s", widths[i], cell)
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(headers)
	total := 0
	for i, w := range widths {
		total += w
		if i > 0 {
			total += 2
		}
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	return sb.String()
}

// TSV renders the timeline as tab-separated values with a header, for
// external plotting tools.
func TSV(tl schedule.Timeline) string {
	var sb strings.Builder
	sb.WriteString("processor\titems\trecv_start\trecv_end\tcomp_end\n")
	for _, p := range tl.Procs {
		fmt.Fprintf(&sb, "%s\t%d\t%g\t%g\t%g\n", p.Name, p.Items, p.Recv.Start, p.Recv.End, p.Comp.End)
	}
	return sb.String()
}

// Bars renders one horizontal bar per processor proportional to its
// finish time, with the communication part marked '=' and computation
// '#' — the reading of the paper's Figures 2-4 ("total time" vs
// "comm. time" per processor).
func Bars(tl schedule.Timeline, width int) string {
	if width < 10 {
		width = 10
	}
	if tl.Makespan <= 0 || len(tl.Procs) == 0 {
		return "(empty timeline)\n"
	}
	nameWidth := 0
	for _, p := range tl.Procs {
		if len(p.Name) > nameWidth {
			nameWidth = len(p.Name)
		}
	}
	scale := float64(width) / tl.Makespan
	var sb strings.Builder
	for _, p := range tl.Procs {
		commCells := int(p.CommTime()*scale + 0.5)
		idleCells := int(p.Idle()*scale + 0.5)
		totalCells := int(p.Finish()*scale + 0.5)
		compCells := totalCells - commCells - idleCells
		if compCells < 0 {
			compCells = 0
		}
		fmt.Fprintf(&sb, "%-*s |%s%s%s %8.1fs (%d items)\n",
			nameWidth, p.Name,
			strings.Repeat(".", idleCells),
			strings.Repeat("=", commCells),
			strings.Repeat("#", compCells),
			p.Finish(), p.Items)
	}
	return sb.String()
}

package trace

import (
	"fmt"
	"strings"

	"repro/internal/schedule"
)

// This file renders timelines as SVG, matching the layout of the
// paper's Figures 2-4: one group per processor along the x axis, a
// bar for its total (finish) time with the communication part
// highlighted, and a second bar for the amount of data it received —
// plus a Gantt variant of Figure 1.

// svgPalette holds the figure colors.
const (
	colorTotal = "#4878a8" // total time bars
	colorComm  = "#d05050" // communication time
	colorData  = "#70a870" // item counts
	colorIdle  = "#cccccc" // idle segments in the Gantt
	colorText  = "#222222"
)

// FigureSVG renders the paper's Figure 2-4 layout: per-processor bars
// for total time and communication time against a left time axis, and
// item-count bars against a right axis.
func FigureSVG(tl schedule.Timeline, title string) string {
	const (
		w, h                 = 900.0, 420.0
		marginL, marginR     = 70.0, 70.0
		marginTop, marginBot = 50.0, 90.0
		plotW                = w - marginL - marginR
		plotH                = h - marginTop - marginBot
	)
	n := len(tl.Procs)
	if n == 0 || tl.Makespan <= 0 {
		return emptySVG(title)
	}

	maxItems := 1
	for _, p := range tl.Procs {
		if p.Items > maxItems {
			maxItems = p.Items
		}
	}
	maxTime := niceCeil(tl.Makespan)
	maxData := niceCeil(float64(maxItems))

	var sb strings.Builder
	svgHeader(&sb, w, h, title)

	// Axes.
	fmt.Fprintf(&sb, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="%s"/>`+"\n",
		marginL, marginTop, marginL, marginTop+plotH, colorText)
	fmt.Fprintf(&sb, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="%s"/>`+"\n",
		marginL, marginTop+plotH, marginL+plotW, marginTop+plotH, colorText)
	fmt.Fprintf(&sb, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="%s"/>`+"\n",
		marginL+plotW, marginTop, marginL+plotW, marginTop+plotH, colorText)

	// Y ticks (time, left; items, right).
	for i := 0; i <= 4; i++ {
		frac := float64(i) / 4
		y := marginTop + plotH*(1-frac)
		fmt.Fprintf(&sb, `<text x="%g" y="%g" font-size="11" text-anchor="end" fill="%s">%.0f</text>`+"\n",
			marginL-6, y+4, colorText, maxTime*frac)
		fmt.Fprintf(&sb, `<text x="%g" y="%g" font-size="11" text-anchor="start" fill="%s">%.0f</text>`+"\n",
			marginL+plotW+6, y+4, colorText, maxData*frac)
		if i > 0 {
			fmt.Fprintf(&sb, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#eeeeee"/>`+"\n",
				marginL, y, marginL+plotW, y)
		}
	}
	fmt.Fprintf(&sb, `<text x="%g" y="%g" font-size="12" text-anchor="middle" fill="%s" transform="rotate(-90 16 %g)">time (seconds)</text>`+"\n",
		16.0, marginTop+plotH/2, colorText, marginTop+plotH/2)
	fmt.Fprintf(&sb, `<text x="%g" y="%g" font-size="12" text-anchor="middle" fill="%s" transform="rotate(90 %g %g)">data (items)</text>`+"\n",
		w-14, marginTop+plotH/2, colorText, w-14, marginTop+plotH/2)

	// Bars.
	group := plotW / float64(n)
	barW := group * 0.26
	for i, p := range tl.Procs {
		x0 := marginL + group*float64(i) + group*0.12
		// Total time bar with the comm portion stacked at its base.
		totalH := plotH * p.Finish() / maxTime
		commH := plotH * p.CommTime() / maxTime
		fmt.Fprintf(&sb, `<rect x="%g" y="%g" width="%g" height="%g" fill="%s"><title>%s total %.1fs</title></rect>`+"\n",
			x0, marginTop+plotH-totalH, barW, totalH, colorTotal, xmlEscape(p.Name), p.Finish())
		fmt.Fprintf(&sb, `<rect x="%g" y="%g" width="%g" height="%g" fill="%s"><title>%s comm %.2fs</title></rect>`+"\n",
			x0, marginTop+plotH-commH, barW, commH, colorComm, xmlEscape(p.Name), p.CommTime())
		// Data bar.
		dataH := plotH * float64(p.Items) / maxData
		fmt.Fprintf(&sb, `<rect x="%g" y="%g" width="%g" height="%g" fill="%s"><title>%s %d items</title></rect>`+"\n",
			x0+barW+group*0.08, marginTop+plotH-dataH, barW, dataH, colorData, xmlEscape(p.Name), p.Items)
		// Label.
		lx := x0 + group*0.3
		fmt.Fprintf(&sb, `<text x="%g" y="%g" font-size="10" text-anchor="end" fill="%s" transform="rotate(-60 %g %g)">%s</text>`+"\n",
			lx, marginTop+plotH+14, colorText, lx, marginTop+plotH+14, xmlEscape(p.Name))
	}

	// Legend.
	legend := []struct {
		color, label string
	}{
		{colorTotal, "total time"},
		{colorComm, "comm. time"},
		{colorData, "amount of data"},
	}
	lx := marginL + 10
	for _, le := range legend {
		fmt.Fprintf(&sb, `<rect x="%g" y="%g" width="12" height="12" fill="%s"/>`+"\n", lx, 18.0, le.color)
		fmt.Fprintf(&sb, `<text x="%g" y="%g" font-size="12" fill="%s">%s</text>`+"\n", lx+16, 28.0, colorText, le.label)
		lx += 130
	}

	sb.WriteString("</svg>\n")
	return sb.String()
}

// GanttSVG renders the Figure 1 layout: one row per processor with its
// idle, receive and compute segments on a shared time axis.
func GanttSVG(tl schedule.Timeline, title string) string {
	const (
		w                    = 900.0
		marginL, marginR     = 110.0, 30.0
		marginTop, marginBot = 50.0, 40.0
		rowH, rowGap         = 26.0, 8.0
	)
	n := len(tl.Procs)
	if n == 0 || tl.Makespan <= 0 {
		return emptySVG(title)
	}
	h := marginTop + marginBot + float64(n)*(rowH+rowGap)
	plotW := w - marginL - marginR
	scale := plotW / tl.Makespan

	var sb strings.Builder
	svgHeader(&sb, w, h, title)
	for i, p := range tl.Procs {
		y := marginTop + float64(i)*(rowH+rowGap)
		fmt.Fprintf(&sb, `<text x="%g" y="%g" font-size="12" text-anchor="end" fill="%s">%s</text>`+"\n",
			marginL-8, y+rowH*0.7, colorText, xmlEscape(p.Name))
		// Idle.
		if p.Idle() > 0 {
			fmt.Fprintf(&sb, `<rect x="%g" y="%g" width="%g" height="%g" fill="%s"><title>idle %.2fs</title></rect>`+"\n",
				marginL, y, p.Idle()*scale, rowH, colorIdle, p.Idle())
		}
		// Receive.
		if p.CommTime() > 0 {
			fmt.Fprintf(&sb, `<rect x="%g" y="%g" width="%g" height="%g" fill="%s"><title>recv %.2fs</title></rect>`+"\n",
				marginL+p.Recv.Start*scale, y, p.CommTime()*scale, rowH, colorComm, p.CommTime())
		}
		// Compute.
		if p.CompTime() > 0 {
			fmt.Fprintf(&sb, `<rect x="%g" y="%g" width="%g" height="%g" fill="%s"><title>comp %.2fs</title></rect>`+"\n",
				marginL+p.Comp.Start*scale, y, p.CompTime()*scale, rowH, colorTotal, p.CompTime())
		}
	}
	// Time axis.
	axisY := marginTop + float64(n)*(rowH+rowGap) + 4
	fmt.Fprintf(&sb, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="%s"/>`+"\n",
		marginL, axisY, marginL+plotW, axisY, colorText)
	for i := 0; i <= 5; i++ {
		frac := float64(i) / 5
		x := marginL + plotW*frac
		fmt.Fprintf(&sb, `<text x="%g" y="%g" font-size="11" text-anchor="middle" fill="%s">%.0fs</text>`+"\n",
			x, axisY+16, colorText, tl.Makespan*frac)
	}
	sb.WriteString("</svg>\n")
	return sb.String()
}

func svgHeader(sb *strings.Builder, w, h float64, title string) {
	fmt.Fprintf(sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%g" height="%g" viewBox="0 0 %g %g">`+"\n", w, h, w, h)
	fmt.Fprintf(sb, `<rect width="%g" height="%g" fill="white"/>`+"\n", w, h)
	fmt.Fprintf(sb, `<text x="%g" y="16" font-size="14" text-anchor="middle" fill="%s">%s</text>`+"\n",
		w/2, colorText, xmlEscape(title))
}

func emptySVG(title string) string {
	var sb strings.Builder
	svgHeader(&sb, 300, 60, title)
	sb.WriteString(`<text x="150" y="40" font-size="12" text-anchor="middle">empty timeline</text>` + "\n</svg>\n")
	return sb.String()
}

// niceCeil rounds up to 1, 2 or 5 times a power of ten, for clean axis
// maxima.
func niceCeil(x float64) float64 {
	if x <= 0 {
		return 1
	}
	mag := 1.0
	for mag*10 <= x {
		mag *= 10
	}
	for mag > x {
		mag /= 10
	}
	for _, m := range []float64{1, 2, 5, 10} {
		if mag*m >= x {
			return mag * m
		}
	}
	return mag * 10
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

package trace

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/schedule"
)

func timeline(t *testing.T) schedule.Timeline {
	t.Helper()
	procs := []core.Processor{
		{Name: "P1", Comm: cost.Linear{PerItem: 1}, Comp: cost.Linear{PerItem: 2}},
		{Name: "P2", Comm: cost.Linear{PerItem: 2}, Comp: cost.Linear{PerItem: 1}},
		{Name: "root", Comm: cost.Zero, Comp: cost.Linear{PerItem: 2}},
	}
	tl, err := schedule.Build(procs, core.Distribution{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	return tl
}

func TestGanttContainsAllProcessors(t *testing.T) {
	out := Gantt(timeline(t), 60)
	for _, name := range []string{"P1", "P2", "root"} {
		if !strings.Contains(out, name) {
			t.Errorf("Gantt missing %s:\n%s", name, out)
		}
	}
	for _, marker := range []string{"=", "#", "."} {
		if !strings.Contains(out, marker) {
			t.Errorf("Gantt missing %q marker:\n%s", marker, out)
		}
	}
}

func TestGanttStairVisible(t *testing.T) {
	out := Gantt(timeline(t), 60)
	lines := strings.Split(out, "\n")
	// Compare the bar regions (between the pipes): P2 idles while P1
	// is served, P1 never idles.
	bar := func(line string) string {
		lo := strings.IndexByte(line, '|')
		hi := strings.LastIndexByte(line, '|')
		if lo < 0 || hi <= lo {
			t.Fatalf("no bar in %q", line)
		}
		return line[lo+1 : hi]
	}
	if strings.Contains(bar(lines[0]), ".") {
		t.Errorf("P1 has idle time:\n%s", out)
	}
	if !strings.Contains(bar(lines[1]), ".") {
		t.Errorf("P2 shows no stair idle:\n%s", out)
	}
}

func TestGanttEmpty(t *testing.T) {
	out := Gantt(schedule.Timeline{}, 40)
	if !strings.Contains(out, "empty") {
		t.Errorf("empty timeline rendering: %q", out)
	}
}

func TestGanttNarrowWidthClamped(t *testing.T) {
	out := Gantt(timeline(t), 1)
	if len(out) == 0 {
		t.Error("no output for narrow width")
	}
}

func TestSummaryTable(t *testing.T) {
	out := SummaryTable(timeline(t))
	for _, want := range []string{"processor", "items", "comm(s)", "total(s)", "P1", "root"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
	// P1's total is 6.00 (2 comm + 4 comp).
	if !strings.Contains(out, "6.00") {
		t.Errorf("summary missing P1's total 6.00:\n%s", out)
	}
}

func TestTableAlignment(t *testing.T) {
	out := Table([]string{"name", "value"}, [][]string{{"a", "1"}, {"longname", "22"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4:\n%s", len(lines), out)
	}
	if len(lines[2]) != len(lines[3]) {
		t.Errorf("rows not aligned:\n%s", out)
	}
	if !strings.HasPrefix(lines[1], "---") {
		t.Errorf("missing separator:\n%s", out)
	}
}

func TestTSV(t *testing.T) {
	out := TSV(timeline(t))
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("TSV has %d lines, want 4", len(lines))
	}
	if lines[0] != "processor\titems\trecv_start\trecv_end\tcomp_end" {
		t.Errorf("TSV header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "P1\t2\t0\t2\t6") {
		t.Errorf("TSV row = %q", lines[1])
	}
}

func TestBars(t *testing.T) {
	out := Bars(timeline(t), 40)
	if !strings.Contains(out, "items)") {
		t.Errorf("Bars missing item counts:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("Bars has %d lines", len(lines))
	}
	// The longest-running processor (P2, finish 8) has the longest bar.
	if !strings.Contains(lines[1], "#") || !strings.Contains(lines[1], "=") {
		t.Errorf("P2 bar lacks comm/comp marks: %q", lines[1])
	}
}

func TestBarsEmpty(t *testing.T) {
	if out := Bars(schedule.Timeline{}, 40); !strings.Contains(out, "empty") {
		t.Errorf("empty bars rendering: %q", out)
	}
}

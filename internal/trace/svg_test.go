package trace

import (
	"encoding/xml"
	"strings"
	"testing"

	"repro/internal/schedule"
)

// wellFormed checks the SVG parses as XML.
func wellFormed(t *testing.T, svg string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("SVG is not well-formed XML: %v\n%s", err, svg)
		}
	}
}

func TestFigureSVGWellFormed(t *testing.T) {
	svg := FigureSVG(timeline(t), "Figure 2: original program execution")
	wellFormed(t, svg)
	for _, want := range []string{"<svg", "total time", "comm. time", "amount of data", "P1", "root", "Figure 2"} {
		if !strings.Contains(svg, want) {
			t.Errorf("figure SVG missing %q", want)
		}
	}
	// One total + one comm + one data rect per processor (3 procs),
	// plus background and legend swatches.
	if got := strings.Count(svg, "<rect"); got < 9 {
		t.Errorf("figure SVG has %d rects, want at least 9", got)
	}
}

func TestFigureSVGEmpty(t *testing.T) {
	svg := FigureSVG(schedule.Timeline{}, "empty")
	wellFormed(t, svg)
	if !strings.Contains(svg, "empty timeline") {
		t.Error("empty figure lacks a notice")
	}
}

func TestGanttSVGWellFormed(t *testing.T) {
	svg := GanttSVG(timeline(t), "Figure 1: the stair effect")
	wellFormed(t, svg)
	for _, want := range []string{"<svg", "P1", "P2", "root", "recv", "comp"} {
		if !strings.Contains(svg, want) {
			t.Errorf("gantt SVG missing %q", want)
		}
	}
	// P2 idles (its data waits behind P1's), so there is at least one
	// idle rect.
	if !strings.Contains(svg, "idle") {
		t.Error("gantt SVG shows no idle segment despite the stair")
	}
}

func TestGanttSVGEmpty(t *testing.T) {
	wellFormed(t, GanttSVG(schedule.Timeline{}, "empty"))
}

func TestXMLEscape(t *testing.T) {
	svg := FigureSVG(timeline(t), `a <b> & "c"`)
	wellFormed(t, svg)
}

func TestNiceCeil(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 1}, {0.7, 1}, {1, 1}, {1.2, 2}, {3, 5}, {7, 10}, {853, 1000}, {430, 500}, {99, 100}, {100, 100},
	}
	for _, c := range cases {
		if got := niceCeil(c.in); got != c.want {
			t.Errorf("niceCeil(%g) = %g, want %g", c.in, got, c.want)
		}
	}
}

package trace

import (
	"strings"
	"testing"

	"repro/internal/mpi"
)

// faultyStats builds a two-rank timeline exercising every span kind:
// the root sends, times out, backs off, resends, then runs a rebalance
// round; the worker receives and then crashes.
func faultyStats() []mpi.RankStats {
	return []mpi.RankStats{
		{
			Rank: 0, Name: "root", Finish: 10,
			Spans: []mpi.Span{
				{Phase: mpi.PhaseComm, Start: 0, End: 2, Label: "send→worker"},
				{Phase: mpi.PhaseTimeout, Start: 2, End: 3, Label: "timeout→worker #1"},
				{Phase: mpi.PhaseBackoff, Start: 3, End: 4, Label: "backoff→worker"},
				{Phase: mpi.PhaseComm, Start: 4, End: 6, Label: "send→worker"},
				{Phase: mpi.PhaseComm, Start: 6, End: 8, Label: "rebalance→other"},
				{Phase: mpi.PhaseComp, Start: 8, End: 10},
			},
		},
		{
			Rank: 1, Name: "worker", Finish: 7,
			Spans: []mpi.Span{
				{Phase: mpi.PhaseComm, Start: 4, End: 6, Label: "send→worker"},
				{Phase: mpi.PhaseIdle, Start: 6, End: 7, Label: "crashed"},
			},
		},
	}
}

func TestRankGanttShowsAllSpanKinds(t *testing.T) {
	out := RankGantt(faultyStats(), 60)
	for _, ch := range []string{"=", "!", "~", "R", "#", "x"} {
		if !strings.Contains(out, ch) {
			t.Errorf("gantt missing %q:\n%s", ch, out)
		}
	}
	if !strings.Contains(out, "root") || !strings.Contains(out, "worker") {
		t.Errorf("gantt missing rank names:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // 2 ranks + axis + legend
		t.Errorf("gantt has %d lines, want 4:\n%s", len(lines), out)
	}
}

func TestRankGanttEmpty(t *testing.T) {
	if out := RankGantt(nil, 40); !strings.Contains(out, "empty") {
		t.Errorf("empty gantt = %q", out)
	}
}

func TestRankSVGDistinctColors(t *testing.T) {
	out := RankSVG(faultyStats(), "fault run")
	if !strings.HasPrefix(out, "<svg") || !strings.HasSuffix(out, "</svg>\n") {
		t.Fatalf("not an svg document: %.60q...", out)
	}
	for _, color := range []string{colorComm, colorRebalance, colorTotal, colorTimeout, colorBackoff, colorCrashed} {
		if !strings.Contains(out, color) {
			t.Errorf("svg missing color %s", color)
		}
	}
	for _, label := range []string{"timeout→worker #1", "rebalance→other", "crashed"} {
		if !strings.Contains(out, xmlEscape(label)) {
			t.Errorf("svg missing tooltip %q", label)
		}
	}
}

func TestRankSVGEmpty(t *testing.T) {
	out := RankSVG(nil, "nothing")
	if !strings.Contains(out, "empty timeline") {
		t.Errorf("empty svg = %q", out)
	}
}

package trace

import (
	"fmt"
	"strings"

	"repro/internal/mpi"
)

// This file renders the runtime's per-rank span timelines — richer
// than the analytic schedule.Timeline, because a fault-tolerant run
// has spans the analytic model lacks: timeouts holding the root's
// port, backoff waits before retries, rebalance-round sends, and the
// final silence of a crashed rank.

// span colors, extending the figure palette.
const (
	colorRebalance = "#8055a5" // rebalance-round and resume-round sends
	colorTimeout   = "#e09040" // root port waiting on a lost send
	colorBackoff   = "#b0b0b0" // retry backoff
	colorCrashed   = "#404040" // a crashed rank's final idle
	colorFailover  = "#c23b50" // root re-election after a failover
)

// isRebalance reports whether a comm span belongs to a recovery round:
// a rebalance over survivors, a resume by a promoted root, or a
// degraded-mode diffusion round.
func isRebalance(s mpi.Span) bool {
	return strings.HasPrefix(s.Label, "rebalance") ||
		strings.HasPrefix(s.Label, "resume") ||
		strings.HasPrefix(s.Label, "diffuse")
}

// spanChar maps a span to its ASCII Gantt cell. Plain idle renders as
// the background ('.') and is skipped.
func spanChar(s mpi.Span) (byte, bool) {
	switch s.Phase {
	case mpi.PhaseComm:
		if isRebalance(s) {
			return 'R', true
		}
		return '=', true
	case mpi.PhaseComp:
		return '#', true
	case mpi.PhaseTimeout:
		return '!', true
	case mpi.PhaseBackoff:
		return '~', true
	case mpi.PhaseFailover:
		return 'F', true
	default:
		if s.Label == "crashed" {
			return 'x', true
		}
		return 0, false
	}
}

// RankGantt renders per-rank runtime spans as an ASCII Gantt chart,
// width characters across: '=' communication, 'R' rebalance- or
// resume-round communication, '#' computation, '!' timeout, '~'
// backoff, 'F' root re-election, 'x' the tail of a crashed rank,
// '.' idle.
func RankGantt(stats []mpi.RankStats, width int) string {
	if width < 10 {
		width = 10
	}
	makespan := 0.0
	nameW := 0
	for _, s := range stats {
		if s.Finish > makespan {
			makespan = s.Finish
		}
		for _, sp := range s.Spans {
			if sp.End > makespan {
				makespan = sp.End
			}
		}
		if len(s.Name) > nameW {
			nameW = len(s.Name)
		}
	}
	if len(stats) == 0 || makespan <= 0 {
		return "(empty timeline)\n"
	}
	scale := float64(width) / makespan

	var sb strings.Builder
	for _, s := range stats {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		for _, sp := range s.Spans {
			ch, ok := spanChar(sp)
			if !ok {
				continue
			}
			lo := int(sp.Start * scale)
			hi := int(sp.End * scale)
			if hi == lo {
				hi = lo + 1 // spans are visible even when sub-cell
			}
			for i := lo; i < hi && i < width; i++ {
				row[i] = ch
			}
		}
		fmt.Fprintf(&sb, "%-*s |%s|\n", nameW, s.Name, row)
	}
	fmt.Fprintf(&sb, "%-*s  0%*s\n", nameW, "", width, fmt.Sprintf("%.1fs", makespan))
	sb.WriteString("legend: = comm  R rebalance/resume/diffuse  # comp  ! timeout  ~ backoff  F failover  x crashed  . idle\n")
	return sb.String()
}

// spanColor maps a span to its SVG fill; plain idle is skipped.
func spanColor(s mpi.Span) (string, bool) {
	switch s.Phase {
	case mpi.PhaseComm:
		if isRebalance(s) {
			return colorRebalance, true
		}
		return colorComm, true
	case mpi.PhaseComp:
		return colorTotal, true
	case mpi.PhaseTimeout:
		return colorTimeout, true
	case mpi.PhaseBackoff:
		return colorBackoff, true
	case mpi.PhaseFailover:
		return colorFailover, true
	default:
		if s.Label == "crashed" {
			return colorCrashed, true
		}
		return "", false
	}
}

// RankSVG renders per-rank runtime spans as an SVG Gantt: one row per
// rank, each span a rectangle colored by kind, with its label and
// bounds as a tooltip.
func RankSVG(stats []mpi.RankStats, title string) string {
	const (
		w                    = 900.0
		marginL, marginR     = 110.0, 30.0
		marginTop, marginBot = 66.0, 40.0
		rowH, rowGap         = 26.0, 8.0
	)
	makespan := 0.0
	for _, s := range stats {
		if s.Finish > makespan {
			makespan = s.Finish
		}
		for _, sp := range s.Spans {
			if sp.End > makespan {
				makespan = sp.End
			}
		}
	}
	if len(stats) == 0 || makespan <= 0 {
		return emptySVG(title)
	}
	n := len(stats)
	h := marginTop + marginBot + float64(n)*(rowH+rowGap)
	plotW := w - marginL - marginR
	scale := plotW / makespan

	var sb strings.Builder
	svgHeader(&sb, w, h, title)
	for i, s := range stats {
		y := marginTop + float64(i)*(rowH+rowGap)
		fmt.Fprintf(&sb, `<text x="%g" y="%g" font-size="12" text-anchor="end" fill="%s">%s</text>`+"\n",
			marginL-8, y+rowH*0.7, colorText, xmlEscape(s.Name))
		for _, sp := range s.Spans {
			color, ok := spanColor(sp)
			if !ok {
				continue
			}
			label := sp.Label
			if label == "" {
				label = sp.Phase.String()
			}
			fmt.Fprintf(&sb, `<rect x="%g" y="%g" width="%g" height="%g" fill="%s"><title>%s [%.2fs, %.2fs]</title></rect>`+"\n",
				marginL+sp.Start*scale, y, (sp.End-sp.Start)*scale, rowH, color,
				xmlEscape(label), sp.Start, sp.End)
		}
	}
	// Time axis.
	axisY := marginTop + float64(n)*(rowH+rowGap) + 4
	fmt.Fprintf(&sb, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="%s"/>`+"\n",
		marginL, axisY, marginL+plotW, axisY, colorText)
	for i := 0; i <= 5; i++ {
		frac := float64(i) / 5
		x := marginL + plotW*frac
		fmt.Fprintf(&sb, `<text x="%g" y="%g" font-size="11" text-anchor="middle" fill="%s">%.1fs</text>`+"\n",
			x, axisY+16, colorText, makespan*frac)
	}
	// Legend.
	legend := []struct {
		color, label string
	}{
		{colorComm, "comm"},
		{colorRebalance, "rebalance"},
		{colorTotal, "comp"},
		{colorTimeout, "timeout"},
		{colorBackoff, "backoff"},
		{colorFailover, "failover"},
		{colorCrashed, "crashed"},
	}
	lx := marginL
	for _, le := range legend {
		fmt.Fprintf(&sb, `<rect x="%g" y="%g" width="12" height="12" fill="%s"/>`+"\n", lx, 26.0, le.color)
		fmt.Fprintf(&sb, `<text x="%g" y="%g" font-size="12" fill="%s">%s</text>`+"\n", lx+16, 36.0, colorText, le.label)
		lx += 110
	}
	sb.WriteString("</svg>\n")
	return sb.String()
}

package seismic

import (
	"strings"
	"testing"
)

func TestTravelTimeCurveMonotoneBeforeShadow(t *testing.T) {
	tr := newTracer(t)
	curve := tr.TravelTimeCurve(WaveP, 0, 90, 45)
	prev := 0.0
	for _, pt := range curve {
		if pt.Kind == RayFallback {
			break
		}
		if pt.Seconds <= prev {
			t.Fatalf("T(%g deg) = %g not increasing past %g", pt.DistanceDeg, pt.Seconds, prev)
		}
		prev = pt.Seconds
	}
	if prev == 0 {
		t.Fatal("no turning rays sampled at all")
	}
}

func TestTravelTimeCurvePlausibleMagnitudes(t *testing.T) {
	// Real-Earth anchors (IASP91): P at 30 deg is about 370 s, at 60
	// deg about 600 s. Accept generous windows for the 6-shell model.
	tr := newTracer(t)
	curve := tr.TravelTimeCurve(WaveP, 0, 90, 90)
	at := func(deg float64) TTPoint {
		for _, pt := range curve {
			if pt.DistanceDeg >= deg {
				return pt
			}
		}
		return curve[len(curve)-1]
	}
	if pt := at(30); pt.Seconds < 250 || pt.Seconds > 550 {
		t.Errorf("T(30deg) = %g s, want roughly 370 s", pt.Seconds)
	}
	if pt := at(60); pt.Seconds < 450 || pt.Seconds > 900 {
		t.Errorf("T(60deg) = %g s, want roughly 600 s", pt.Seconds)
	}
}

func TestTravelTimeCurveSSlowerThanP(t *testing.T) {
	tr := newTracer(t)
	pCurve := tr.TravelTimeCurve(WaveP, 0, 60, 30)
	sCurve := tr.TravelTimeCurve(WaveS, 0, 60, 30)
	for i := range pCurve {
		if pCurve[i].Kind == RayFallback || sCurve[i].Kind == RayFallback {
			continue
		}
		if sCurve[i].Seconds <= pCurve[i].Seconds {
			t.Fatalf("S not slower than P at %g deg: %g vs %g",
				pCurve[i].DistanceDeg, sCurve[i].Seconds, pCurve[i].Seconds)
		}
	}
}

func TestShadowStart(t *testing.T) {
	tr := newTracer(t)
	shadow := tr.ShadowStart(WaveP, 180, 180)
	// The real P shadow starts near 98-103 degrees; the simplified
	// model should land in a broad band around it.
	if shadow < 70 || shadow > 130 {
		t.Errorf("P shadow starts at %g deg, expected around 100", shadow)
	}
	// No shadow within a short range.
	if s := tr.ShadowStart(WaveP, 30, 30); s <= 30 {
		t.Errorf("shadow reported at %g deg inside the well-lit range", s)
	}
}

func TestTravelTimeCurveDepthShiftsDown(t *testing.T) {
	tr := newTracer(t)
	surface := tr.TravelTimeCurve(WaveP, 0, 60, 20)
	deep := tr.TravelTimeCurve(WaveP, 500, 60, 20)
	faster := 0
	for i := range surface {
		if surface[i].Kind != RayFallback && deep[i].Kind != RayFallback &&
			deep[i].Seconds < surface[i].Seconds {
			faster++
		}
	}
	if faster < len(surface)/2 {
		t.Errorf("deep-source rays faster at only %d/%d distances", faster, len(surface))
	}
}

func TestTravelTimeCurveDefaults(t *testing.T) {
	tr := newTracer(t)
	curve := tr.TravelTimeCurve(WaveP, 0, 0, 0)
	if len(curve) != 2 {
		t.Fatalf("degenerate parameters produced %d samples, want the clamped 2", len(curve))
	}
	if curve[len(curve)-1].DistanceDeg != 100 {
		t.Errorf("default max distance = %g, want 100", curve[len(curve)-1].DistanceDeg)
	}
}

func TestFormatCurve(t *testing.T) {
	tr := newTracer(t)
	out := FormatCurve(tr.TravelTimeCurve(WaveP, 0, 40, 4))
	if !strings.Contains(out, "deg") || !strings.Contains(out, "turning") {
		t.Errorf("formatted curve missing fields:\n%s", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 5 {
		t.Errorf("formatted curve has wrong row count:\n%s", out)
	}
}

package seismic

import (
	"fmt"
	"math"
	"strings"
)

// TTPoint is one sample of a travel-time curve.
type TTPoint struct {
	// DistanceDeg is the epicentral distance in degrees.
	DistanceDeg float64
	// Seconds is the modeled travel time.
	Seconds float64
	// Kind records how the sample was traced (turning, direct, or
	// fallback inside the core shadow).
	Kind RayKind
}

// TravelTimeCurve samples the model's travel-time curve T(delta) for a
// wave type and source depth, from just above 0 degrees out to maxDeg,
// with the given number of samples — the classic seismological
// travel-time table (e.g. Jeffreys-Bullen) computed from this model.
// It is the standard way to eyeball a velocity model's sanity and is
// used by the tests to pin the tracer's physics.
func (t *Tracer) TravelTimeCurve(wave WaveType, depthKm, maxDeg float64, samples int) []TTPoint {
	if samples < 2 {
		samples = 2
	}
	if maxDeg <= 0 {
		maxDeg = 100
	}
	curve := make([]TTPoint, samples)
	for i := range curve {
		deg := maxDeg * float64(i+1) / float64(samples)
		ev := Event{
			SrcDepthKm: depthKm,
			CapLon:     deg * math.Pi / 180,
			Wave:       wave,
		}
		ray := t.Trace(ev)
		curve[i] = TTPoint{DistanceDeg: deg, Seconds: ray.TravelTime, Kind: ray.Kind}
	}
	return curve
}

// ShadowStart returns the epicentral distance (degrees) at which the
// model's mantle-turning rays run out and the core shadow begins: the
// first sampled distance whose ray falls back. It returns maxDeg+step
// if no fallback occurs within the sampled range.
func (t *Tracer) ShadowStart(wave WaveType, maxDeg float64, samples int) float64 {
	curve := t.TravelTimeCurve(wave, 0, maxDeg, samples)
	for _, pt := range curve {
		if pt.Kind == RayFallback {
			return pt.DistanceDeg
		}
	}
	step := maxDeg / float64(samples)
	return maxDeg + step
}

// FormatCurve renders a curve as a fixed-width table for reports.
func FormatCurve(curve []TTPoint) string {
	var sb strings.Builder
	sb.WriteString("  deg     T(s)   kind\n")
	for _, pt := range curve {
		fmt.Fprintf(&sb, "%5.1f  %7.1f   %s\n", pt.DistanceDeg, pt.Seconds, pt.Kind)
	}
	return sb.String()
}

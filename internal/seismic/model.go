// Package seismic implements the paper's motivating application: a
// seismic-tomography ray tracer. Each input item is one seismic event —
// an earthquake hypocenter, a recording captor, and a wave type — and
// the per-item work is tracing the wave's ray path through a layered
// spherical-Earth velocity model and evaluating its travel time
// (Section 2 of the paper). All rays are independent, which is what
// makes the scatter operation a load-balancing lever.
//
// The paper used the full set of 817,101 seismic events of year 1999;
// we substitute a deterministic synthetic catalog with the same count,
// independence and cost profile (see DESIGN.md).
package seismic

import (
	"errors"
	"fmt"
	"math"
)

// EarthRadiusKm is the reference Earth radius used by the model.
const EarthRadiusKm = 6371.0

// Layer is one constant-velocity spherical shell.
type Layer struct {
	// Name documents the layer (e.g. "lower mantle").
	Name string
	// InnerRadius and OuterRadius bound the shell in km from the
	// Earth's center.
	InnerRadius, OuterRadius float64
	// VP and VS are the P- and S-wave velocities in km/s. VS = 0
	// marks a fluid layer (no shear waves).
	VP, VS float64
}

// EarthModel is a 1-D (radially layered) velocity model, ordered from
// the surface inward.
type EarthModel struct {
	// Layers are ordered from the outermost (crust) to the innermost
	// (inner core), contiguous in radius.
	Layers []Layer
}

// Validate checks layer ordering and contiguity.
func (m EarthModel) Validate() error {
	if len(m.Layers) == 0 {
		return errors.New("seismic: empty earth model")
	}
	if m.Layers[0].OuterRadius != EarthRadiusKm {
		return fmt.Errorf("seismic: outermost layer ends at %g km, want %g", m.Layers[0].OuterRadius, EarthRadiusKm)
	}
	prev := m.Layers[0].OuterRadius
	for i, l := range m.Layers {
		if l.OuterRadius != prev {
			return fmt.Errorf("seismic: layer %d (%s) starts at %g, previous ended at %g", i, l.Name, l.OuterRadius, prev)
		}
		if l.InnerRadius >= l.OuterRadius {
			return fmt.Errorf("seismic: layer %d (%s) has inverted radii", i, l.Name)
		}
		if l.VP <= 0 || l.VS < 0 {
			return fmt.Errorf("seismic: layer %d (%s) has invalid velocities", i, l.Name)
		}
		prev = l.InnerRadius
	}
	if prev != 0 {
		return fmt.Errorf("seismic: innermost layer ends at %g km, want 0", prev)
	}
	return nil
}

// VelocityAt returns the wave velocity at radius r for the wave type.
// It returns 0 for a fluid layer and an S wave.
func (m EarthModel) VelocityAt(r float64, w WaveType) float64 {
	for _, l := range m.Layers {
		if r <= l.OuterRadius && r >= l.InnerRadius {
			return l.velocity(w)
		}
	}
	return 0
}

func (l Layer) velocity(w WaveType) float64 {
	if w == WaveS {
		return l.VS
	}
	return l.VP
}

// IASP91Lite returns a simplified standard Earth model: six
// constant-velocity shells approximating the IASP91 reference model.
// Velocity increases with depth throughout the mantle, so mantle eta
// (r/v) decreases monotonically with depth and two-point ray tracing by
// bisection on the ray parameter is well-posed for mantle-turning rays.
func IASP91Lite() EarthModel {
	return EarthModel{Layers: []Layer{
		{Name: "crust", InnerRadius: 6336, OuterRadius: 6371, VP: 5.8, VS: 3.4},
		{Name: "upper mantle", InnerRadius: 6151, OuterRadius: 6336, VP: 8.0, VS: 4.5},
		{Name: "transition zone", InnerRadius: 5711, OuterRadius: 6151, VP: 9.6, VS: 5.2},
		{Name: "lower mantle", InnerRadius: 3482, OuterRadius: 5711, VP: 12.3, VS: 6.6},
		{Name: "outer core", InnerRadius: 1217.5, OuterRadius: 3482, VP: 9.0, VS: 0},
		{Name: "inner core", InnerRadius: 0, OuterRadius: 1217.5, VP: 11.1, VS: 3.6},
	}}
}

// Refine splits every layer into sub-shells of at most stepKm
// thickness, emulating a smooth velocity gradient with a velocity
// interpolated linearly between the original layer boundaries. More
// sub-shells mean more work per ray (and a more accurate path): this is
// the resolution knob of the compute kernel.
func (m EarthModel) Refine(stepKm float64) EarthModel {
	if stepKm <= 0 {
		return m
	}
	var out EarthModel
	for li, l := range m.Layers {
		thickness := l.OuterRadius - l.InnerRadius
		parts := int(math.Ceil(thickness / stepKm))
		if parts < 1 {
			parts = 1
		}
		// Interpolate towards the next (deeper) layer's velocities to
		// mimic a gradient; the deepest layer stays constant.
		nextVP, nextVS := l.VP, l.VS
		if li+1 < len(m.Layers) {
			nextVP = (l.VP + m.Layers[li+1].VP) / 2
			nextVS = (l.VS + m.Layers[li+1].VS) / 2
			if l.VS == 0 {
				nextVS = 0 // a fluid layer stays fluid
			}
		}
		for k := 0; k < parts; k++ {
			fracTop := float64(k) / float64(parts)
			fracBot := float64(k+1) / float64(parts)
			sub := Layer{
				Name:        fmt.Sprintf("%s[%d/%d]", l.Name, k+1, parts),
				OuterRadius: l.OuterRadius - fracTop*thickness,
				InnerRadius: l.OuterRadius - fracBot*thickness,
				VP:          l.VP + (nextVP-l.VP)*(fracTop+fracBot)/2,
				VS:          l.VS + (nextVS-l.VS)*(fracTop+fracBot)/2,
			}
			out.Layers = append(out.Layers, sub)
		}
	}
	return out
}

package seismic

import (
	"fmt"
	"math"
	"math/rand"
)

// WaveType distinguishes compressional (P) from shear (S) waves.
type WaveType uint8

const (
	// WaveP is a compressional wave.
	WaveP WaveType = iota
	// WaveS is a shear wave.
	WaveS
)

// String names the wave type.
func (w WaveType) String() string {
	switch w {
	case WaveP:
		return "P"
	case WaveS:
		return "S"
	default:
		return fmt.Sprintf("wave(%d)", int(w))
	}
}

// Event is one seismic wave record: the earthquake hypocenter, the
// receiving captor, and the wave type — exactly the "pair of 3D
// coordinates plus the wave type" the paper describes as input items.
// Angles are in radians, depth in km.
type Event struct {
	// ID numbers the event within its catalog.
	ID int64
	// SrcLat, SrcLon and SrcDepthKm locate the earthquake hypocenter.
	SrcLat, SrcLon, SrcDepthKm float64
	// CapLat and CapLon locate the recording captor (at the surface).
	CapLat, CapLon float64
	// Wave is the recorded wave type.
	Wave WaveType
	// ObservedTime is the recorded travel time in seconds (synthetic:
	// model time plus noise), the quantity tomography fits against.
	ObservedTime float64
}

// Station is a fixed captor location.
type Station struct {
	// Name identifies the station.
	Name string
	// Lat and Lon are in radians.
	Lat, Lon float64
}

// StationNetwork generates a deterministic worldwide captor network of
// the given size, quasi-uniform on the sphere (Fibonacci lattice).
func StationNetwork(n int) []Station {
	if n <= 0 {
		return nil
	}
	stations := make([]Station, n)
	golden := math.Pi * (3 - math.Sqrt(5))
	for i := range stations {
		z := 1 - 2*(float64(i)+0.5)/float64(n)
		lat := math.Asin(z)
		lon := math.Mod(golden*float64(i), 2*math.Pi) - math.Pi
		stations[i] = Station{Name: fmt.Sprintf("ST%03d", i), Lat: lat, Lon: lon}
	}
	return stations
}

// CatalogConfig tunes the synthetic catalog generator.
type CatalogConfig struct {
	// Seed makes the catalog reproducible.
	Seed int64
	// Events is the number of records to generate (the paper's full
	// 1999 data set has 817,101).
	Events int
	// Stations is the captor network size (default 200).
	Stations int
	// SWaveFraction is the fraction of S-wave records (default 0.3).
	SWaveFraction float64
}

// SyntheticCatalog generates a deterministic pseudo-random event
// catalog: hypocenters clustered along synthetic seismic belts with
// depths mostly shallow (an exponential mixture up to 700 km, like real
// seismicity), recorded by a worldwide station network.
func SyntheticCatalog(cfg CatalogConfig) []Event {
	if cfg.Events <= 0 {
		return nil
	}
	if cfg.Stations <= 0 {
		cfg.Stations = 200
	}
	if cfg.SWaveFraction <= 0 {
		cfg.SWaveFraction = 0.3
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	stations := StationNetwork(cfg.Stations)

	// Synthetic seismic belts: a few great-circle-ish bands where most
	// quakes concentrate, mimicking plate boundaries.
	type belt struct {
		lat0, lon0, latAmp, spread float64
	}
	belts := []belt{
		{lat0: 0.6, lon0: -2.8, latAmp: 0.5, spread: 0.08},  // circum-pacific north
		{lat0: -0.5, lon0: 2.0, latAmp: 0.4, spread: 0.10},  // circum-pacific south
		{lat0: 0.3, lon0: 0.5, latAmp: 0.15, spread: 0.06},  // alpide belt
		{lat0: 0.0, lon0: -0.4, latAmp: 0.05, spread: 0.12}, // mid-atlantic ridge
	}

	events := make([]Event, cfg.Events)
	for i := range events {
		b := belts[rng.Intn(len(belts))]
		along := rng.Float64()*2*math.Pi - math.Pi
		lat := b.lat0 + b.latAmp*math.Sin(along+b.lon0) + rng.NormFloat64()*b.spread
		lat = clampLat(lat)
		lon := wrapLon(along)

		// Depth: 70% shallow (exponential, mean 25 km), 30% deeper
		// (up to 700 km, subduction zones).
		var depth float64
		if rng.Float64() < 0.7 {
			depth = math.Min(70, rng.ExpFloat64()*25)
		} else {
			depth = 70 + rng.Float64()*630
		}

		st := stations[rng.Intn(len(stations))]
		wave := WaveP
		if rng.Float64() < cfg.SWaveFraction {
			wave = WaveS
		}
		events[i] = Event{
			ID:         int64(i),
			SrcLat:     lat,
			SrcLon:     lon,
			SrcDepthKm: depth,
			CapLat:     st.Lat,
			CapLon:     st.Lon,
			Wave:       wave,
		}
	}
	return events
}

func clampLat(lat float64) float64 {
	const max = math.Pi/2 - 1e-6
	if lat > max {
		return max
	}
	if lat < -max {
		return -max
	}
	return lat
}

func wrapLon(lon float64) float64 {
	for lon > math.Pi {
		lon -= 2 * math.Pi
	}
	for lon < -math.Pi {
		lon += 2 * math.Pi
	}
	return lon
}

// EpicentralDistance returns the great-circle angular distance in
// radians between two (lat, lon) points, via the haversine formula.
func EpicentralDistance(lat1, lon1, lat2, lon2 float64) float64 {
	dLat := lat2 - lat1
	dLon := lon2 - lon1
	h := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1)*math.Cos(lat2)*math.Sin(dLon/2)*math.Sin(dLon/2)
	if h > 1 {
		h = 1
	}
	return 2 * math.Asin(math.Sqrt(h))
}

// Distance returns the event's epicentral distance in radians.
func (e Event) Distance() float64 {
	return EpicentralDistance(e.SrcLat, e.SrcLon, e.CapLat, e.CapLon)
}

package seismic

import (
	"errors"
	"math"
	"math/rand"
)

// SynthesizeObservations fills every event's ObservedTime by tracing it
// through a perturbed copy of the model (per-layer velocity anomalies
// up to anomalyFrac) and adding Gaussian pick noise (noiseStd seconds).
// This produces the "recorded travel times" a tomography run fits
// against; the inversion should then recover anomalies of the right
// sign. It returns the perturbed velocities (per layer of the refined
// tracer model) for verification.
func SynthesizeObservations(t *Tracer, events []Event, seed int64, anomalyFrac, noiseStd float64) ([]float64, error) {
	if t == nil {
		return nil, errors.New("seismic: nil tracer")
	}
	rng := rand.New(rand.NewSource(seed))
	perturbed := t.model
	perturbed.Layers = append([]Layer(nil), t.model.Layers...)
	truth := make([]float64, len(perturbed.Layers))
	for i := range perturbed.Layers {
		f := 1 + anomalyFrac*(2*rng.Float64()-1)
		perturbed.Layers[i].VP *= f
		if perturbed.Layers[i].VS > 0 {
			perturbed.Layers[i].VS *= f
		}
		truth[i] = f
	}
	pt := &Tracer{model: perturbed, usable: t.usable, bisectionSteps: t.bisectionSteps}
	for i := range events {
		ray := pt.Trace(events[i])
		events[i].ObservedTime = ray.TravelTime + noiseStd*rng.NormFloat64()
	}
	return truth, nil
}

// Residual is one event's misfit against the reference model.
type Residual struct {
	// EventID identifies the event.
	EventID int64
	// Seconds is observed minus modeled travel time.
	Seconds float64
	// Ray is the modeled ray (carrying the per-layer sensitivity).
	Ray Ray
}

// Residuals traces every event against the tracer's reference model
// and returns the travel-time misfits. Fallback rays are skipped (their
// chord-time estimate would pollute the inversion).
func Residuals(t *Tracer, events []Event) []Residual {
	out := make([]Residual, 0, len(events))
	for _, ev := range events {
		ray := t.Trace(ev)
		if ray.Kind == RayFallback {
			continue
		}
		out = append(out, Residual{
			EventID: ev.ID,
			Seconds: ev.ObservedTime - ray.TravelTime,
			Ray:     ray,
		})
	}
	return out
}

// InversionResult is the outcome of one tomographic update step.
type InversionResult struct {
	// SlownessUpdate is the per-layer relative slowness correction
	// (positive = the layer is slower than the reference model).
	SlownessUpdate []float64
	// RaysUsed counts the residuals that contributed.
	RaysUsed int
	// RMSBefore is the root-mean-square residual of the input.
	RMSBefore float64
}

// InvertLayers performs one damped least-squares tomography step for a
// 1-D layered model: each layer's relative slowness correction is the
// sensitivity-weighted average of the residuals crossing it,
//
//	ds_l/s_l = sum_e (res_e * t_{e,l}) / (damping + sum_e t_{e,l} * T_e)
//
// where t_{e,l} is the time ray e spends in layer l and T_e its total
// time. This is the diagonal (Jacobi) approximation of the classic
// travel-time inversion — a faithful miniature of the "compute a new
// velocity model that minimizes those differences" step of Section 2.1.
func InvertLayers(t *Tracer, residuals []Residual, damping float64) InversionResult {
	layers := t.Layers()
	num := make([]float64, layers)
	den := make([]float64, layers)
	var ss float64
	for _, r := range residuals {
		ss += r.Seconds * r.Seconds
		total := r.Ray.TravelTime
		if total <= 0 {
			continue
		}
		for l, tl := range r.Ray.LayerTimes {
			if tl <= 0 {
				continue
			}
			num[l] += r.Seconds * tl
			den[l] += tl * total
		}
	}
	res := InversionResult{
		SlownessUpdate: make([]float64, layers),
		RaysUsed:       len(residuals),
	}
	if len(residuals) > 0 {
		res.RMSBefore = math.Sqrt(ss / float64(len(residuals)))
	}
	for l := range num {
		res.SlownessUpdate[l] = num[l] / (damping + den[l])
	}
	return res
}

// ApplyUpdate returns a copy of the tracer whose layer velocities
// incorporate the slowness update (v' = v / (1 + ds)), clamped to stay
// within a factor 2 of the original.
func ApplyUpdate(t *Tracer, update []float64) *Tracer {
	model := t.model
	model.Layers = append([]Layer(nil), t.model.Layers...)
	for i := range model.Layers {
		if i >= len(update) {
			break
		}
		f := 1 + update[i]
		if f < 0.5 {
			f = 0.5
		}
		if f > 2 {
			f = 2
		}
		model.Layers[i].VP /= f
		if model.Layers[i].VS > 0 {
			model.Layers[i].VS /= f
		}
	}
	return &Tracer{model: model, usable: t.usable, bisectionSteps: t.bisectionSteps}
}

package seismic

import (
	"bytes"
	"strings"
	"testing"
)

func TestCatalogRoundTrip(t *testing.T) {
	events := SyntheticCatalog(CatalogConfig{Seed: 4, Events: 200})
	events[0].ObservedTime = 123.456
	var buf bytes.Buffer
	if err := WriteCatalog(&buf, events); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCatalog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(events) {
		t.Fatalf("round trip: %d events, want %d", len(back), len(events))
	}
	for i := range events {
		if back[i] != events[i] {
			t.Fatalf("event %d changed: %+v != %+v", i, back[i], events[i])
		}
	}
}

func TestWriteCatalogEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCatalog(&buf, nil); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCatalog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 0 {
		t.Errorf("empty catalog round-tripped %d events", len(back))
	}
}

func TestReadCatalogRejectsBadInput(t *testing.T) {
	cases := []struct {
		name, data string
	}{
		{"empty", ""},
		{"wrong header", "a,b,c,d,e,f,g,h\n"},
		{"bad id", "id,src_lat,src_lon,src_depth_km,cap_lat,cap_lon,wave,observed_s\nx,0,0,0,0,0,P,0\n"},
		{"bad lat", "id,src_lat,src_lon,src_depth_km,cap_lat,cap_lon,wave,observed_s\n1,zzz,0,0,0,0,P,0\n"},
		{"bad wave", "id,src_lat,src_lon,src_depth_km,cap_lat,cap_lon,wave,observed_s\n1,0,0,0,0,0,Q,0\n"},
		{"bad time", "id,src_lat,src_lon,src_depth_km,cap_lat,cap_lon,wave,observed_s\n1,0,0,0,0,0,P,zz\n"},
		{"depth out of range", "id,src_lat,src_lon,src_depth_km,cap_lat,cap_lon,wave,observed_s\n1,0,0,99999,0,0,P,0\n"},
		{"short row", "id,src_lat,src_lon,src_depth_km,cap_lat,cap_lon,wave,observed_s\n1,0,0\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ReadCatalog(strings.NewReader(c.data)); err == nil {
				t.Error("bad catalog accepted")
			}
		})
	}
}

func TestCatalogCSVIsHumanReadable(t *testing.T) {
	events := SyntheticCatalog(CatalogConfig{Seed: 5, Events: 2})
	var buf bytes.Buffer
	if err := WriteCatalog(&buf, events); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "id,src_lat") {
		t.Errorf("missing header: %q", out)
	}
	if lines := strings.Count(out, "\n"); lines != 3 {
		t.Errorf("expected 3 lines, got %d:\n%s", lines, out)
	}
}

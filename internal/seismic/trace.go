package seismic

import (
	"math"
)

// RayKind classifies how a ray was traced.
type RayKind uint8

const (
	// RayTurning is a ray that dives, turns at depth, and comes back
	// up (the normal teleseismic case).
	RayTurning RayKind = iota
	// RayDirect is an upgoing-only ray from a deep source to a nearby
	// captor.
	RayDirect
	// RayFallback marks a ray outside the model's tractable range
	// (e.g. core-grazing); its time is a straight-chord estimate.
	RayFallback
)

// String names the ray kind.
func (k RayKind) String() string {
	switch k {
	case RayTurning:
		return "turning"
	case RayDirect:
		return "direct"
	case RayFallback:
		return "fallback"
	default:
		return "unknown"
	}
}

// Ray is the result of tracing one event.
type Ray struct {
	// Kind classifies the ray.
	Kind RayKind
	// TravelTime is the modeled travel time in seconds.
	TravelTime float64
	// Param is the ray parameter p = r*sin(i)/v in s/rad (0 for
	// fallback rays).
	Param float64
	// TurnRadius is the turning-point radius in km (turning rays).
	TurnRadius float64
	// Distance echoes the epicentral distance in radians.
	Distance float64
	// LayerTimes holds the time spent in each model layer (indexed
	// like EarthModel.Layers), the sensitivity row a tomographic
	// inversion needs.
	LayerTimes []float64
}

// Tracer traces rays through a (refined) earth model. It precomputes
// the shells usable by each wave type. A Tracer is safe for concurrent
// use (it is read-only after construction).
type Tracer struct {
	model EarthModel
	// usable[w] is the number of leading (outermost) layers a wave of
	// type w can propagate through before hitting a fluid layer or the
	// core-mantle boundary; rays must turn above that depth.
	usable [2]int
	// bisectionSteps controls the two-point solve accuracy.
	bisectionSteps int
}

// NewTracer builds a tracer for the model. Resolution (in km) refines
// the model's shells; pass 0 to keep the model as is.
func NewTracer(model EarthModel, resolutionKm float64) (*Tracer, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	refined := model.Refine(resolutionKm)
	t := &Tracer{model: refined, bisectionSteps: 48}
	for w := 0; w < 2; w++ {
		wave := WaveType(w)
		count := 0
		for _, l := range refined.Layers {
			// Stop at the outer core: fluid for S, and a low-velocity
			// zone for P that breaks eta-monotonicity (core shadow).
			if l.velocity(wave) <= 0 || l.Name == "outer core" || hasPrefix(l.Name, "outer core") {
				break
			}
			count++
		}
		t.usable[w] = count
	}
	return t, nil
}

func hasPrefix(s, prefix string) bool {
	return len(s) >= len(prefix) && s[:len(prefix)] == prefix
}

// Model returns the tracer's (refined) model.
func (t *Tracer) Model() EarthModel { return t.model }

// Layers returns the number of shells in the refined model.
func (t *Tracer) Layers() int { return len(t.model.Layers) }

// legSpec describes one integration leg: from radius rTop down to
// rBottom (rTop >= rBottom).
type legSpec struct{ rTop, rBottom float64 }

// deltaAndTime integrates the epicentral distance (rad) and travel
// time (s) of a ray with parameter p along the legs, accumulating
// per-layer times into layerTimes when non-nil. It returns ok=false if
// the ray cannot propagate (p exceeds eta somewhere above the turning
// point, i.e. total reflection inside the stack).
func (t *Tracer) deltaAndTime(p float64, wave WaveType, legs []legSpec, layerTimes []float64) (delta, time float64, ok bool) {
	usable := t.usable[wave]
	for _, leg := range legs {
		for li := 0; li < usable; li++ {
			l := t.model.Layers[li]
			v := l.velocity(wave)
			rU := math.Min(leg.rTop, l.OuterRadius)
			rL := math.Max(leg.rBottom, l.InnerRadius)
			if rU <= rL {
				continue
			}
			a := p * v // radius at which this shell's eta equals p
			if a >= rU {
				// The ray cannot reach this shell segment at all.
				return 0, 0, false
			}
			if a > rL {
				rL = a // the ray turns inside this shell
			}
			// Closed forms for a constant-velocity shell:
			//   d(delta) = acos(a/rU) - acos(a/rL)
			//   d(time)  = (sqrt(rU^2-a^2) - sqrt(rL^2-a^2)) / v
			dDelta := math.Acos(clamp1(a/rU)) - math.Acos(clamp1(a/rL))
			dTime := (math.Sqrt(rU*rU-a*a) - math.Sqrt(math.Max(0, rL*rL-a*a))) / v
			delta += dDelta
			time += dTime
			if layerTimes != nil {
				layerTimes[li] += dTime
			}
		}
	}
	return delta, time, true
}

func clamp1(x float64) float64 {
	if x > 1 {
		return 1
	}
	if x < -1 {
		return -1
	}
	return x
}

// turningRadius returns where a ray of parameter p turns, searched
// from the surface down through the usable shells: the radius at which
// eta(r) = p when one exists inside a shell, or the top of the first
// shell the ray cannot enter (p exceeds the shell's surface eta —
// total reflection at a velocity discontinuity). ok=false means the
// ray dives below the usable stack.
func (t *Tracer) turningRadius(p float64, wave WaveType) (float64, bool) {
	for li := 0; li < t.usable[wave]; li++ {
		l := t.model.Layers[li]
		v := l.velocity(wave)
		rt := p * v
		if rt > l.OuterRadius {
			// The ray cannot penetrate this shell: it reflects off
			// the interface (p lies in an eta gap between layers).
			// The outermost layer cannot reject a ray this way:
			// callers cap p below the source/surface eta.
			return l.OuterRadius, true
		}
		if rt >= l.InnerRadius {
			return rt, true
		}
	}
	return 0, false
}

// etaAt returns r/v at the given radius.
func (t *Tracer) etaAt(r float64, wave WaveType) float64 {
	v := t.model.VelocityAt(r, wave)
	if v <= 0 {
		return 0
	}
	return r / v
}

// minUsableEta returns eta at the bottom of the usable stack, the
// smallest ray parameter that still turns inside it.
func (t *Tracer) minUsableEta(wave WaveType) float64 {
	u := t.usable[wave]
	if u == 0 {
		return 0
	}
	bottom := t.model.Layers[u-1]
	return bottom.InnerRadius / bottom.velocity(wave)
}

// Trace solves the two-point problem for one event: find the ray
// parameter whose ray connects the hypocenter to the captor, and
// report its travel time. Events whose geometry falls outside the
// tractable range (core-grazing paths, exotic geometries) produce a
// RayFallback result with a straight-chord travel-time estimate, so
// every event costs roughly the same and the computation never fails —
// matching the paper's setting where every ray is traced.
func (t *Tracer) Trace(ev Event) Ray {
	wave := ev.Wave
	delta := ev.Distance()
	rs := EarthRadiusKm - ev.SrcDepthKm
	if rs < 0 {
		rs = 0
	}
	ray := Ray{Distance: delta, LayerTimes: make([]float64, len(t.model.Layers))}

	if t.usable[wave] == 0 || rs <= t.bottomUsableRadius(wave) {
		return t.fallback(ev, ray)
	}

	// Branch 1: direct upgoing ray (deep source, nearby captor).
	// Delta grows with p on this branch; its maximum is at p just
	// below eta(source).
	etaSrc := t.etaAt(rs, wave)
	upLegs := []legSpec{{rTop: EarthRadiusKm, rBottom: rs}}
	maxUpP := etaSrc * (1 - 1e-9)
	maxUpDelta, _, okUp := t.deltaAndTime(maxUpP, wave, upLegs, nil)
	if ev.SrcDepthKm > 0 && okUp && delta <= maxUpDelta {
		p := t.bisect(delta, wave, upLegs, 0, maxUpP, false)
		clear(ray.LayerTimes)
		d, time, ok := t.deltaAndTime(p, wave, upLegs, ray.LayerTimes)
		if ok && math.Abs(d-delta) < 1e-3+1e-3*delta {
			ray.Kind = RayDirect
			ray.TravelTime = time
			ray.Param = p
			ray.TurnRadius = rs
			return ray
		}
	}

	// Branch 2: turning ray. Delta shrinks as p grows (steeper rays
	// turn shallower in a model whose velocity rises with depth), so
	// bisect with inverted monotonicity on p in [pMin, pMax].
	pMin := t.minUsableEta(wave) * (1 + 1e-9)
	pMax := etaSrc * (1 - 1e-9)
	if pMin >= pMax {
		return t.fallback(ev, ray)
	}
	turnLegs := func(p float64) ([]legSpec, bool) {
		rt, ok := t.turningRadius(p, wave)
		if !ok {
			return nil, false
		}
		return []legSpec{
			{rTop: EarthRadiusKm, rBottom: rt}, // captor leg
			{rTop: rs, rBottom: rt},            // source leg
		}, true
	}
	legsMin, okMin := turnLegs(pMin)
	if !okMin {
		return t.fallback(ev, ray)
	}
	maxDelta, _, ok := t.deltaAndTime(pMin, wave, legsMin, nil)
	if !ok || delta > maxDelta {
		// Beyond the deepest mantle-turning ray: core shadow.
		return t.fallback(ev, ray)
	}

	lo, hi := pMin, pMax
	for i := 0; i < t.bisectionSteps; i++ {
		mid := (lo + hi) / 2
		legs, okLegs := turnLegs(mid)
		if !okLegs {
			hi = mid
			continue
		}
		d, _, okD := t.deltaAndTime(mid, wave, legs, nil)
		if !okD || d > delta {
			lo = mid // ray too deep (delta too large): increase p
		} else {
			hi = mid
		}
	}
	p := (lo + hi) / 2
	legs, okLegs := turnLegs(p)
	if !okLegs {
		return t.fallback(ev, ray)
	}
	clear(ray.LayerTimes)
	d, time, okD := t.deltaAndTime(p, wave, legs, ray.LayerTimes)
	if !okD || math.Abs(d-delta) > 1e-2+1e-2*delta {
		return t.fallback(ev, ray)
	}
	rt, _ := t.turningRadius(p, wave)
	ray.Kind = RayTurning
	ray.TravelTime = time
	ray.Param = p
	ray.TurnRadius = rt
	return ray
}

// bisect solves deltaAndTime(p) = target on a branch where delta is
// increasing in p (invert=false) over [lo, hi].
func (t *Tracer) bisect(target float64, wave WaveType, legs []legSpec, lo, hi float64, invert bool) float64 {
	for i := 0; i < t.bisectionSteps; i++ {
		mid := (lo + hi) / 2
		d, _, ok := t.deltaAndTime(mid, wave, legs, nil)
		smaller := !ok || d < target
		if invert {
			smaller = !smaller
		}
		if smaller {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// bottomUsableRadius is the inner radius of the deepest usable shell.
func (t *Tracer) bottomUsableRadius(wave WaveType) float64 {
	u := t.usable[wave]
	if u == 0 {
		return EarthRadiusKm
	}
	return t.model.Layers[u-1].InnerRadius
}

// fallback estimates a straight-chord travel time at the average
// mantle velocity, spreading the time across the crossed layers
// proportionally to path length.
func (t *Tracer) fallback(ev Event, ray Ray) Ray {
	rs := EarthRadiusKm - ev.SrcDepthKm
	// Chord length between the two 3-D points.
	x1, y1, z1 := sphToCart(rs, ev.SrcLat, ev.SrcLon)
	x2, y2, z2 := sphToCart(EarthRadiusKm, ev.CapLat, ev.CapLon)
	chord := math.Sqrt((x1-x2)*(x1-x2) + (y1-y2)*(y1-y2) + (z1-z2)*(z1-z2))
	v := t.averageVelocity(ev.Wave)
	ray.Kind = RayFallback
	if v > 0 {
		ray.TravelTime = chord / v
	}
	// Attribute everything to the outermost layer; fallback rays are
	// excluded from inversions anyway.
	if len(ray.LayerTimes) > 0 {
		clear(ray.LayerTimes)
		ray.LayerTimes[0] = ray.TravelTime
	}
	return ray
}

func sphToCart(r, lat, lon float64) (x, y, z float64) {
	return r * math.Cos(lat) * math.Cos(lon),
		r * math.Cos(lat) * math.Sin(lon),
		r * math.Sin(lat)
}

// averageVelocity is the thickness-weighted mean velocity of the usable
// shells (or of all solid shells when the wave has no usable stack).
func (t *Tracer) averageVelocity(wave WaveType) float64 {
	var sum, weight float64
	count := t.usable[wave]
	if count == 0 {
		count = len(t.model.Layers)
	}
	for li := 0; li < count; li++ {
		l := t.model.Layers[li]
		v := l.velocity(wave)
		if v <= 0 {
			continue
		}
		th := l.OuterRadius - l.InnerRadius
		sum += v * th
		weight += th
	}
	if weight == 0 {
		return 0
	}
	return sum / weight
}

// TraceAll traces every event and returns the rays.
func (t *Tracer) TraceAll(events []Event) []Ray {
	rays := make([]Ray, len(events))
	for i, ev := range events {
		rays[i] = t.Trace(ev)
	}
	return rays
}

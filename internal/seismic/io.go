package seismic

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// This file reads and writes event catalogs as CSV, the "data file"
// the paper's root processor reads n lines from. The column layout is
//
//	id,src_lat,src_lon,src_depth_km,cap_lat,cap_lon,wave,observed_s
//
// with angles in radians and the wave column "P" or "S".

// csvHeader is the catalog file header row.
var csvHeader = []string{"id", "src_lat", "src_lon", "src_depth_km", "cap_lat", "cap_lon", "wave", "observed_s"}

// WriteCatalog writes events as CSV with a header row.
func WriteCatalog(w io.Writer, events []Event) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("seismic: write header: %w", err)
	}
	rec := make([]string, len(csvHeader))
	for _, ev := range events {
		rec[0] = strconv.FormatInt(ev.ID, 10)
		rec[1] = strconv.FormatFloat(ev.SrcLat, 'g', -1, 64)
		rec[2] = strconv.FormatFloat(ev.SrcLon, 'g', -1, 64)
		rec[3] = strconv.FormatFloat(ev.SrcDepthKm, 'g', -1, 64)
		rec[4] = strconv.FormatFloat(ev.CapLat, 'g', -1, 64)
		rec[5] = strconv.FormatFloat(ev.CapLon, 'g', -1, 64)
		rec[6] = ev.Wave.String()
		rec[7] = strconv.FormatFloat(ev.ObservedTime, 'g', -1, 64)
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("seismic: write event %d: %w", ev.ID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCatalog parses a catalog CSV produced by WriteCatalog (the
// header row is required and validated).
func ReadCatalog(r io.Reader) ([]Event, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("seismic: read header: %w", err)
	}
	for i, want := range csvHeader {
		if header[i] != want {
			return nil, fmt.Errorf("seismic: header column %d is %q, want %q", i, header[i], want)
		}
	}
	var events []Event
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return events, nil
		}
		if err != nil {
			return nil, fmt.Errorf("seismic: line %d: %w", line, err)
		}
		ev, err := parseEvent(rec)
		if err != nil {
			return nil, fmt.Errorf("seismic: line %d: %w", line, err)
		}
		events = append(events, ev)
	}
}

func parseEvent(rec []string) (Event, error) {
	var ev Event
	var err error
	if ev.ID, err = strconv.ParseInt(rec[0], 10, 64); err != nil {
		return Event{}, fmt.Errorf("bad id %q", rec[0])
	}
	floats := []*float64{&ev.SrcLat, &ev.SrcLon, &ev.SrcDepthKm, &ev.CapLat, &ev.CapLon}
	for i, dst := range floats {
		v, err := strconv.ParseFloat(rec[i+1], 64)
		if err != nil {
			return Event{}, fmt.Errorf("bad %s %q", csvHeader[i+1], rec[i+1])
		}
		*dst = v
	}
	switch rec[6] {
	case "P":
		ev.Wave = WaveP
	case "S":
		ev.Wave = WaveS
	default:
		return Event{}, fmt.Errorf("bad wave %q", rec[6])
	}
	if ev.ObservedTime, err = strconv.ParseFloat(rec[7], 64); err != nil {
		return Event{}, fmt.Errorf("bad observed_s %q", rec[7])
	}
	if ev.SrcDepthKm < 0 || ev.SrcDepthKm > EarthRadiusKm {
		return Event{}, fmt.Errorf("depth %g km out of range", ev.SrcDepthKm)
	}
	return ev, nil
}

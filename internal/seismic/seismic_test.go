package seismic

import (
	"math"
	"testing"
	"testing/quick"
)

func TestIASP91LiteValidates(t *testing.T) {
	if err := IASP91Lite().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestModelValidateCatchesBrokenModels(t *testing.T) {
	cases := []struct {
		name string
		m    EarthModel
	}{
		{"empty", EarthModel{}},
		{"wrong surface", EarthModel{Layers: []Layer{{OuterRadius: 6000, InnerRadius: 0, VP: 5}}}},
		{"gap", EarthModel{Layers: []Layer{
			{OuterRadius: 6371, InnerRadius: 3000, VP: 5},
			{OuterRadius: 2900, InnerRadius: 0, VP: 5},
		}}},
		{"not reaching center", EarthModel{Layers: []Layer{{OuterRadius: 6371, InnerRadius: 100, VP: 5}}}},
		{"inverted", EarthModel{Layers: []Layer{{OuterRadius: 6371, InnerRadius: 6400, VP: 5}}}},
		{"zero velocity", EarthModel{Layers: []Layer{{OuterRadius: 6371, InnerRadius: 0, VP: 0}}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := c.m.Validate(); err == nil {
				t.Error("broken model validated")
			}
		})
	}
}

func TestVelocityAt(t *testing.T) {
	m := IASP91Lite()
	if v := m.VelocityAt(6371, WaveP); v != 5.8 {
		t.Errorf("surface VP = %g, want 5.8", v)
	}
	if v := m.VelocityAt(4000, WaveP); v != 12.3 {
		t.Errorf("lower mantle VP = %g, want 12.3", v)
	}
	if v := m.VelocityAt(2000, WaveS); v != 0 {
		t.Errorf("outer core VS = %g, want 0 (fluid)", v)
	}
	if v := m.VelocityAt(99999, WaveP); v != 0 {
		t.Errorf("outside the earth VP = %g, want 0", v)
	}
}

func TestRefinePreservesStructure(t *testing.T) {
	m := IASP91Lite().Refine(100)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(m.Layers) <= len(IASP91Lite().Layers) {
		t.Errorf("refinement did not add shells: %d", len(m.Layers))
	}
	// Refining with 0 is the identity.
	m0 := IASP91Lite().Refine(0)
	if len(m0.Layers) != len(IASP91Lite().Layers) {
		t.Error("Refine(0) changed the model")
	}
	// Fluid layers must stay fluid.
	for _, l := range m.Layers {
		if hasPrefix(l.Name, "outer core") && l.VS != 0 {
			t.Errorf("refined outer core shell has VS = %g", l.VS)
		}
	}
}

func TestStationNetwork(t *testing.T) {
	st := StationNetwork(100)
	if len(st) != 100 {
		t.Fatalf("got %d stations", len(st))
	}
	for _, s := range st {
		if s.Lat < -math.Pi/2 || s.Lat > math.Pi/2 || s.Lon < -math.Pi || s.Lon > math.Pi {
			t.Errorf("station %s out of range: %g, %g", s.Name, s.Lat, s.Lon)
		}
	}
	if StationNetwork(0) != nil {
		t.Error("empty network not nil")
	}
	// Quasi-uniform: both hemispheres populated.
	north := 0
	for _, s := range st {
		if s.Lat > 0 {
			north++
		}
	}
	if north < 40 || north > 60 {
		t.Errorf("northern hemisphere has %d of 100 stations", north)
	}
}

func TestSyntheticCatalogDeterministic(t *testing.T) {
	cfg := CatalogConfig{Seed: 42, Events: 500}
	a := SyntheticCatalog(cfg)
	b := SyntheticCatalog(cfg)
	if len(a) != 500 || len(b) != 500 {
		t.Fatalf("catalog sizes %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("catalogs diverge at %d", i)
		}
	}
	c := SyntheticCatalog(CatalogConfig{Seed: 43, Events: 500})
	same := 0
	for i := range a {
		if a[i].SrcLat == c[i].SrcLat {
			same++
		}
	}
	if same > 250 {
		t.Error("different seeds produce nearly identical catalogs")
	}
}

func TestSyntheticCatalogShape(t *testing.T) {
	events := SyntheticCatalog(CatalogConfig{Seed: 7, Events: 2000})
	var shallow, sWaves int
	for _, ev := range events {
		if ev.SrcDepthKm < 0 || ev.SrcDepthKm > 700 {
			t.Fatalf("event depth %g out of range", ev.SrcDepthKm)
		}
		if ev.SrcDepthKm < 70 {
			shallow++
		}
		if ev.Wave == WaveS {
			sWaves++
		}
		if math.Abs(ev.SrcLat) > math.Pi/2 {
			t.Fatalf("latitude %g out of range", ev.SrcLat)
		}
	}
	if shallow < 1000 {
		t.Errorf("only %d/2000 shallow events; real seismicity is mostly shallow", shallow)
	}
	if sWaves < 400 || sWaves > 800 {
		t.Errorf("%d/2000 S waves, want around 30%%", sWaves)
	}
	if SyntheticCatalog(CatalogConfig{}) != nil {
		t.Error("zero-event catalog not nil")
	}
}

func TestEpicentralDistance(t *testing.T) {
	// Antipodes are pi apart.
	if d := EpicentralDistance(0, 0, 0, math.Pi); math.Abs(d-math.Pi) > 1e-9 {
		t.Errorf("antipodal distance = %g, want pi", d)
	}
	// Same point.
	if d := EpicentralDistance(0.5, 1, 0.5, 1); d != 0 {
		t.Errorf("self distance = %g", d)
	}
	// Pole to equator is pi/2.
	if d := EpicentralDistance(math.Pi/2, 0, 0, 2); math.Abs(d-math.Pi/2) > 1e-9 {
		t.Errorf("pole-equator distance = %g, want pi/2", d)
	}
}

// TestEpicentralDistanceSymmetryProperty checks d(a,b) == d(b,a).
func TestEpicentralDistanceSymmetryProperty(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		l1 := math.Mod(math.Abs(lat1), math.Pi/2)
		l2 := math.Mod(math.Abs(lat2), math.Pi/2)
		o1 := math.Mod(lon1, math.Pi)
		o2 := math.Mod(lon2, math.Pi)
		if math.IsNaN(l1 + l2 + o1 + o2) {
			return true
		}
		a := EpicentralDistance(l1, o1, l2, o2)
		b := EpicentralDistance(l2, o2, l1, o1)
		return math.Abs(a-b) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func newTracer(t *testing.T) *Tracer {
	t.Helper()
	tr, err := NewTracer(IASP91Lite(), 0)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestTracerUsableStack(t *testing.T) {
	tr := newTracer(t)
	// Both wave types propagate through the 4 mantle/crust layers and
	// stop at the outer core.
	if tr.usable[WaveP] != 4 || tr.usable[WaveS] != 4 {
		t.Errorf("usable stacks = %d (P), %d (S), want 4, 4", tr.usable[WaveP], tr.usable[WaveS])
	}
}

func TestTraceSurfaceEventBasic(t *testing.T) {
	tr := newTracer(t)
	ev := Event{SrcLat: 0, SrcLon: 0, CapLat: 0, CapLon: 0.5, Wave: WaveP} // ~28.6 degrees
	ray := tr.Trace(ev)
	if ray.Kind != RayTurning {
		t.Fatalf("kind = %v, want turning", ray.Kind)
	}
	if ray.TravelTime <= 0 {
		t.Fatalf("travel time = %g", ray.TravelTime)
	}
	// Plausibility: a 28.6-degree P wave takes roughly 6 minutes in
	// the real Earth; accept a broad window for the simplified model.
	if ray.TravelTime < 200 || ray.TravelTime > 700 {
		t.Errorf("travel time = %g s, implausible for 28.6 degrees", ray.TravelTime)
	}
	if ray.TurnRadius >= EarthRadiusKm || ray.TurnRadius <= 3482 {
		t.Errorf("turning radius %g outside the mantle", ray.TurnRadius)
	}
}

func TestTraceTravelTimeIncreasesWithDistance(t *testing.T) {
	tr := newTracer(t)
	prev := 0.0
	for _, deg := range []float64{5, 10, 20, 30, 40, 50, 60} {
		ev := Event{CapLon: deg * math.Pi / 180, Wave: WaveP}
		ray := tr.Trace(ev)
		if ray.Kind == RayFallback {
			t.Fatalf("fallback at %g degrees", deg)
		}
		if ray.TravelTime <= prev {
			t.Errorf("travel time not increasing at %g degrees: %g <= %g", deg, ray.TravelTime, prev)
		}
		prev = ray.TravelTime
	}
}

func TestTraceSWaveSlowerThanP(t *testing.T) {
	tr := newTracer(t)
	evP := Event{CapLon: 0.4, Wave: WaveP}
	evS := Event{CapLon: 0.4, Wave: WaveS}
	rayP, rayS := tr.Trace(evP), tr.Trace(evS)
	if rayS.TravelTime <= rayP.TravelTime {
		t.Errorf("S wave (%g s) not slower than P wave (%g s)", rayS.TravelTime, rayP.TravelTime)
	}
}

func TestTraceDeepSourceShortensTime(t *testing.T) {
	tr := newTracer(t)
	shallow := tr.Trace(Event{CapLon: 0.6, Wave: WaveP, SrcDepthKm: 0})
	deep := tr.Trace(Event{CapLon: 0.6, Wave: WaveP, SrcDepthKm: 300})
	if deep.Kind == RayFallback || shallow.Kind == RayFallback {
		t.Fatal("unexpected fallback")
	}
	if deep.TravelTime >= shallow.TravelTime {
		t.Errorf("deep source (%g s) not faster than shallow (%g s)", deep.TravelTime, shallow.TravelTime)
	}
}

func TestTraceDirectRayForDeepNearbyEvent(t *testing.T) {
	tr := newTracer(t)
	// 600 km deep, captor 1 degree away: an upgoing direct ray.
	ev := Event{SrcDepthKm: 600, CapLon: 1 * math.Pi / 180, Wave: WaveP}
	ray := tr.Trace(ev)
	if ray.Kind != RayDirect {
		t.Fatalf("kind = %v, want direct", ray.Kind)
	}
	// Roughly 600 km at ~9-12 km/s.
	if ray.TravelTime < 40 || ray.TravelTime > 90 {
		t.Errorf("direct travel time = %g s, implausible", ray.TravelTime)
	}
}

func TestTraceCoreShadowFallsBack(t *testing.T) {
	tr := newTracer(t)
	// 150 degrees: deep in the core shadow for mantle-turning rays.
	ev := Event{CapLon: 150 * math.Pi / 180, Wave: WaveP}
	ray := tr.Trace(ev)
	if ray.Kind != RayFallback {
		t.Fatalf("kind = %v, want fallback in the core shadow", ray.Kind)
	}
	if ray.TravelTime <= 0 {
		t.Error("fallback time not positive")
	}
}

func TestTraceLayerTimesSumToTravelTime(t *testing.T) {
	tr := newTracer(t)
	ray := tr.Trace(Event{CapLon: 0.5, Wave: WaveP})
	sum := 0.0
	for _, lt := range ray.LayerTimes {
		if lt < 0 {
			t.Fatalf("negative layer time %g", lt)
		}
		sum += lt
	}
	if math.Abs(sum-ray.TravelTime) > 1e-6*ray.TravelTime {
		t.Errorf("layer times sum to %g, travel time is %g", sum, ray.TravelTime)
	}
}

func TestTraceRefinedModelConverges(t *testing.T) {
	coarse := newTracer(t)
	fine, err := NewTracer(IASP91Lite(), 50)
	if err != nil {
		t.Fatal(err)
	}
	ev := Event{CapLon: 0.5, Wave: WaveP}
	a, b := coarse.Trace(ev), fine.Trace(ev)
	if a.Kind == RayFallback || b.Kind == RayFallback {
		t.Fatal("unexpected fallback")
	}
	// The refined model interpolates velocities, so times differ, but
	// not wildly.
	if math.Abs(a.TravelTime-b.TravelTime) > 0.2*a.TravelTime {
		t.Errorf("coarse %g s vs refined %g s differ too much", a.TravelTime, b.TravelTime)
	}
}

func TestTraceAllCatalogNeverNegative(t *testing.T) {
	tr := newTracer(t)
	events := SyntheticCatalog(CatalogConfig{Seed: 3, Events: 300})
	rays := tr.TraceAll(events)
	if len(rays) != 300 {
		t.Fatalf("traced %d rays", len(rays))
	}
	fallbacks := 0
	for i, ray := range rays {
		if ray.TravelTime < 0 || math.IsNaN(ray.TravelTime) {
			t.Fatalf("ray %d has travel time %g", i, ray.TravelTime)
		}
		if ray.Kind == RayFallback {
			fallbacks++
		}
	}
	// Some events land in the core shadow, but most should trace.
	if fallbacks > 150 {
		t.Errorf("%d/300 fallbacks; tracer rarely succeeds", fallbacks)
	}
}

func TestNewTracerRejectsBrokenModel(t *testing.T) {
	if _, err := NewTracer(EarthModel{}, 0); err == nil {
		t.Error("broken model accepted")
	}
}

func TestSynthesizeAndInvertRecoversAnomalySigns(t *testing.T) {
	tr, err := NewTracer(IASP91Lite(), 0)
	if err != nil {
		t.Fatal(err)
	}
	events := SyntheticCatalog(CatalogConfig{Seed: 11, Events: 1500})
	truth, err := SynthesizeObservations(tr, events, 5, 0.03, 0.0)
	if err != nil {
		t.Fatal(err)
	}
	residuals := Residuals(tr, events)
	if len(residuals) < 500 {
		t.Fatalf("only %d residuals", len(residuals))
	}
	inv := InvertLayers(tr, residuals, 1.0)
	if inv.RMSBefore <= 0 {
		t.Fatal("no misfit against a perturbed model?")
	}
	// The mantle layers (0..3) are densely sampled; the inversion's
	// slowness corrections there should have the right sign: a layer
	// made faster (truth > 1) has negative residual contribution ->
	// negative slowness update.
	agree, checked := 0, 0
	for l := 0; l < 4; l++ {
		if math.Abs(truth[l]-1) < 0.005 || math.Abs(inv.SlownessUpdate[l]) < 1e-9 {
			continue
		}
		checked++
		wantNegative := truth[l] > 1
		if (inv.SlownessUpdate[l] < 0) == wantNegative {
			agree++
		}
	}
	if checked > 0 && agree*2 < checked {
		t.Errorf("inversion sign agreement %d/%d", agree, checked)
	}
	// Applying the update must reduce the RMS misfit.
	updated := ApplyUpdate(tr, inv.SlownessUpdate)
	res2 := Residuals(updated, events)
	inv2 := InvertLayers(updated, res2, 1.0)
	if inv2.RMSBefore >= inv.RMSBefore {
		t.Errorf("update did not reduce misfit: %g -> %g", inv.RMSBefore, inv2.RMSBefore)
	}
}

func TestSynthesizeObservationsNilTracer(t *testing.T) {
	if _, err := SynthesizeObservations(nil, nil, 0, 0, 0); err == nil {
		t.Error("nil tracer accepted")
	}
}

func TestInvertLayersEmptyResiduals(t *testing.T) {
	tr := newTracer(t)
	inv := InvertLayers(tr, nil, 1)
	if inv.RaysUsed != 0 || inv.RMSBefore != 0 {
		t.Errorf("empty inversion = %+v", inv)
	}
	for _, u := range inv.SlownessUpdate {
		if u != 0 {
			t.Error("empty inversion produced nonzero updates")
		}
	}
}

func TestApplyUpdateClamps(t *testing.T) {
	tr := newTracer(t)
	huge := make([]float64, tr.Layers())
	for i := range huge {
		huge[i] = 100 // absurd slowness increase
	}
	updated := ApplyUpdate(tr, huge)
	for i, l := range updated.model.Layers {
		if l.VP < tr.model.Layers[i].VP/2-1e-9 {
			t.Errorf("layer %d VP collapsed to %g", i, l.VP)
		}
	}
}

func TestWaveTypeString(t *testing.T) {
	if WaveP.String() != "P" || WaveS.String() != "S" {
		t.Error("wave type names wrong")
	}
}

func TestRayKindString(t *testing.T) {
	if RayTurning.String() != "turning" || RayDirect.String() != "direct" || RayFallback.String() != "fallback" {
		t.Error("ray kind names wrong")
	}
}

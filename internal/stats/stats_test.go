package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Errorf("N = %d, want 8", s.N)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("Min, Max = %g, %g, want 2, 9", s.Min, s.Max)
	}
	if s.Mean != 5 {
		t.Errorf("Mean = %g, want 5", s.Mean)
	}
	wantSD := math.Sqrt(32.0 / 7.0)
	if math.Abs(s.StdDev-wantSD) > 1e-12 {
		t.Errorf("StdDev = %g, want %g", s.StdDev, wantSD)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Errorf("Summarize(nil) = %+v, want zero value", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{3})
	if s.Min != 3 || s.Max != 3 || s.Mean != 3 || s.StdDev != 0 || s.Median != 3 {
		t.Errorf("Summarize single = %+v", s)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		p, want float64
	}{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {-5, 1}, {150, 5}, {12.5, 1.5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("Percentile of empty sample is not NaN")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Percentile mutated its input: %v", xs)
	}
}

func TestRelativeError(t *testing.T) {
	if got := RelativeError(101, 100); math.Abs(got-0.01) > 1e-12 {
		t.Errorf("RelativeError(101, 100) = %g, want 0.01", got)
	}
	if got := RelativeError(5, 0); got != 5 {
		t.Errorf("RelativeError(5, 0) = %g, want 5", got)
	}
	if got := RelativeError(-3, -4); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("RelativeError(-3, -4) = %g, want 0.25", got)
	}
}

func TestImbalance(t *testing.T) {
	// The paper's Fig. 3: earliest 405 s, latest 430 s -> about 6%.
	got := Imbalance([]float64{405, 430, 415, 428})
	want := (430.0 - 405.0) / 430.0
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Imbalance = %g, want %g", got, want)
	}
	if Imbalance(nil) != 0 {
		t.Error("Imbalance(nil) != 0")
	}
	if Imbalance([]float64{0, 0}) != 0 {
		t.Error("Imbalance of all-zero times != 0")
	}
}

func TestFitLine(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // y = 1 + 2x
	fit, err := FitLine(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-2) > 1e-12 || math.Abs(fit.Intercept-1) > 1e-12 {
		t.Errorf("fit = %+v, want slope 2 intercept 1", fit)
	}
	if math.Abs(fit.R2-1) > 1e-12 {
		t.Errorf("R2 = %g, want 1", fit.R2)
	}
}

func TestFitLineErrors(t *testing.T) {
	if _, err := FitLine([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := FitLine([]float64{1}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := FitLine([]float64{2, 2}, []float64{1, 3}); err == nil {
		t.Error("vertical data accepted")
	}
}

func TestFitPowerLaw(t *testing.T) {
	// y = 3 * x^2
	xs := []float64{1, 2, 4, 8, 16}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 * x * x
	}
	k, e, err := FitPowerLaw(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(k-3) > 1e-9 || math.Abs(e-2) > 1e-9 {
		t.Errorf("power law fit = %g * x^%g, want 3 * x^2", k, e)
	}
}

func TestFitPowerLawRejectsNonPositive(t *testing.T) {
	if _, _, err := FitPowerLaw([]float64{0, 1}, []float64{1, 2}); err == nil {
		t.Error("zero x accepted")
	}
	if _, _, err := FitPowerLaw([]float64{1, 2}, []float64{1, -2}); err == nil {
		t.Error("negative y accepted")
	}
	if _, _, err := FitPowerLaw([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("mismatched lengths accepted")
	}
}

// Property: the mean always lies between min and max.
func TestSummarizeMeanBoundsProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, math.Mod(x, 1e12))
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Min <= s.Mean+1e-6 && s.Mean <= s.Max+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Imbalance is always within [0, 1] for non-negative times.
func TestImbalanceRangeProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, math.Abs(math.Mod(x, 1e12)))
			}
		}
		im := Imbalance(xs)
		return im >= 0 && im <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

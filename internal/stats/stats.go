// Package stats provides the small statistical toolbox used by the
// calibration and experiment harnesses: summaries, relative errors, and
// a simple linear regression for cost extrapolation.
package stats

import (
	"errors"
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	// N is the sample size.
	N int
	// Min and Max are the sample extremes.
	Min, Max float64
	// Mean is the arithmetic mean.
	Mean float64
	// StdDev is the sample standard deviation (n-1 denominator).
	StdDev float64
	// Median is the 50th percentile.
	Median float64
}

// Summarize computes descriptive statistics. It returns a zero Summary
// for an empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(len(xs)-1))
	}
	s.Median = Percentile(xs, 50)
	return s
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. It returns NaN for an empty
// sample and clamps p into [0, 100].
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// RelativeError returns |got-want| / |want|, or |got| when want is zero.
// It is the measure the paper uses to report the heuristic's quality
// ("an error relative to the optimal solution of less than 6e-6").
func RelativeError(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// Imbalance returns (max-min)/max of the finish times, the "maximum
// difference in finish times as a fraction of the total duration"
// reported in Section 5.2. It returns 0 for empty or all-zero input.
func Imbalance(finishTimes []float64) float64 {
	if len(finishTimes) == 0 {
		return 0
	}
	min, max := finishTimes[0], finishTimes[0]
	for _, t := range finishTimes {
		if t < min {
			min = t
		}
		if t > max {
			max = t
		}
	}
	if max == 0 {
		return 0
	}
	return (max - min) / max
}

// LinearFit is the least-squares line y = Intercept + Slope*x.
type LinearFit struct {
	// Slope and Intercept are the fitted coefficients.
	Slope, Intercept float64
	// R2 is the coefficient of determination of the fit.
	R2 float64
}

// FitLine fits y = a + b*x by ordinary least squares. It needs at least
// two points with distinct x.
func FitLine(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, errors.New("stats: mismatched sample lengths")
	}
	if len(xs) < 2 {
		return LinearFit{}, errors.New("stats: need at least two points")
	}
	var n, sx, sy, sxx, sxy float64
	for i := range xs {
		n++
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	det := n*sxx - sx*sx
	if det == 0 {
		return LinearFit{}, errors.New("stats: all x values identical")
	}
	fit := LinearFit{
		Slope:     (n*sxy - sx*sy) / det,
		Intercept: (sy*sxx - sx*sxy) / det,
	}
	// R².
	meanY := sy / n
	var ssTot, ssRes float64
	for i := range xs {
		pred := fit.Intercept + fit.Slope*xs[i]
		ssRes += (ys[i] - pred) * (ys[i] - pred)
		ssTot += (ys[i] - meanY) * (ys[i] - meanY)
	}
	if ssTot == 0 {
		fit.R2 = 1
	} else {
		fit.R2 = 1 - ssRes/ssTot
	}
	return fit, nil
}

// FitPowerLaw fits y = k * x^e by linear regression in log-log space,
// used to verify the empirical complexity of the dynamic programs
// (Algorithm 1 should show e ≈ 2 in n, Algorithm 2 closer to 1).
// All xs and ys must be strictly positive.
func FitPowerLaw(xs, ys []float64) (k, e float64, err error) {
	lx := make([]float64, len(xs))
	ly := make([]float64, len(ys))
	if len(xs) != len(ys) {
		return 0, 0, errors.New("stats: mismatched sample lengths")
	}
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			return 0, 0, errors.New("stats: power-law fit needs positive data")
		}
		lx[i] = math.Log(xs[i])
		ly[i] = math.Log(ys[i])
	}
	fit, err := FitLine(lx, ly)
	if err != nil {
		return 0, 0, err
	}
	return math.Exp(fit.Intercept), fit.Slope, nil
}

// Seismic tomography end to end: the paper's motivating application,
// run for real on the virtual-time MPI runtime.
//
// The pipeline mirrors Section 2 of the paper:
//  1. the root holds a catalog of seismic events (source, captor, wave
//     type) with observed travel times;
//  2. the events are scattered to heterogeneous processors with a
//     balanced MPI_Scatterv (the paper's transformation);
//  3. every rank really ray-traces its share through a layered Earth
//     model and computes travel-time residuals;
//  4. the residuals are gathered and a tomographic update step fits a
//     new velocity model ("a new velocity model that minimizes those
//     differences is computed").
//
// Run with: go run ./examples/seismic
package main

import (
	"fmt"
	"log"

	scatter "repro"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/seismic"
)

const (
	nEvents      = 20000 // a slice of the paper's 817,101-event year
	resolutionKm = 150   // model refinement (more = more work per ray)
)

func main() {
	// The grid: the paper's Table 1 testbed, ordered by the Theorem 3
	// policy (descending bandwidth, root dinadan last).
	procs, err := scatter.PlatformProcessors(scatter.Table1())
	if err != nil {
		log.Fatal(err)
	}

	// Balance the scatter for the catalog size.
	res, err := scatter.Balance(procs, nEvents)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("balanced %d events over %d processors; predicted makespan %.2f s (virtual)\n\n",
		nEvents, len(procs), res.Makespan)

	// The reference model every rank uses, and the synthetic
	// observations (traced through a perturbed model + pick noise).
	tracer, err := seismic.NewTracer(seismic.IASP91Lite(), resolutionKm)
	if err != nil {
		log.Fatal(err)
	}
	catalog := seismic.SyntheticCatalog(seismic.CatalogConfig{Seed: 1999, Events: nEvents})
	if _, err := seismic.SynthesizeObservations(tracer, catalog, 7, 0.02, 0.1); err != nil {
		log.Fatal(err)
	}

	world, err := mpi.NewWorld(procs, len(procs)-1)
	if err != nil {
		log.Fatal(err)
	}

	// One tomography iteration, SPMD style.
	var allResiduals []seismic.Residual
	stats, err := mpi.Run(world, func(c *mpi.Comm) error {
		var raydata []seismic.Event
		if c.IsRoot() {
			raydata = catalog
		}
		rbuff, err := mpi.Scatterv(c, raydata, []int(res.Distribution))
		if err != nil {
			return err
		}
		// Real computation: trace the rays, build residuals.
		residuals := seismic.Residuals(tracer, rbuff)
		// Charge the virtual cost of the share (the platform's beta).
		c.ChargeItems(len(rbuff))
		// Gather the residual rows at the root for the inversion.
		gathered, err := mpi.Gatherv(c, residuals)
		if err != nil {
			return err
		}
		if c.IsRoot() {
			allResiduals = gathered
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("per-rank virtual times:")
	for _, s := range stats {
		fmt.Printf("  %-12s %6d rays  comm %6.2fs  comp %7.2fs  finish %7.2fs\n",
			s.Name, s.ItemsReceived, s.CommTime, s.CompTime, s.Finish)
	}
	fmt.Printf("virtual makespan: %.2f s (uniform would be %.2f s)\n\n",
		mpi.Makespan(stats),
		scatter.Makespan(procs, core.Uniform(len(procs), nEvents)))

	// The inversion step at the root.
	inv := seismic.InvertLayers(tracer, allResiduals, 5)
	fmt.Printf("tomography update from %d usable rays (RMS misfit %.3f s):\n", inv.RaysUsed, inv.RMSBefore)
	updated := seismic.ApplyUpdate(tracer, inv.SlownessUpdate)
	inv2 := seismic.InvertLayers(updated, seismic.Residuals(updated, catalog), 5)
	fmt.Printf("after one update: RMS misfit %.3f s\n", inv2.RMSBefore)
}

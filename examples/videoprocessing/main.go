// Video processing: scatter frame chunks to heterogeneous transcode
// nodes — the data-partitioning scenario of the paper's related work
// (Altilar & Parker, "Optimal scheduling algorithms for communication
// constrained parallel processing", cited in Section 6).
//
// This example exercises the affine cost model (per-message latency +
// per-frame serialization) and the paper's remark that a monitoring
// daemon can be queried "just before a scatter operation to retrieve
// the instantaneous grid characteristics": between two scatter batches
// one node picks up background load, and the distribution is
// recomputed from the fresher costs.
//
// Run with: go run ./examples/videoprocessing
package main

import (
	"fmt"
	"log"

	scatter "repro"
)

const framesPerBatch = 50000

// node describes a transcode box: WAN latency + per-frame transfer
// cost, and per-frame transcode cost.
type node struct {
	name             string
	latency, perComm float64
	perComp          float64
}

func processors(nodes []node, loadFactor map[string]float64) []scatter.Processor {
	procs := make([]scatter.Processor, len(nodes))
	for i, nd := range nodes {
		comp := nd.perComp
		if f, ok := loadFactor[nd.name]; ok {
			comp *= f
		}
		procs[i] = scatter.Processor{
			Name: nd.name,
			Comm: scatter.AffineCost(nd.latency, nd.perComm),
			Comp: scatter.LinearCost(comp),
		}
	}
	procs[len(procs)-1].Comm = scatter.FreeCost() // root ingest server
	return procs
}

func main() {
	nodes := []node{
		{"gpu-box", 0.020, 2.0e-5, 0.0008},
		{"desktop-a", 0.005, 1.0e-5, 0.0040},
		{"desktop-b", 0.005, 1.2e-5, 0.0042},
		{"laptop", 0.050, 9.0e-5, 0.0085},
		{"ingest", 0, 0, 0.0050}, // root: holds the frames
	}

	// Batch 1: fresh measurements, balanced scatter.
	procs := processors(nodes, nil)
	res, err := scatter.Balance(procs, framesPerBatch)
	if err != nil {
		log.Fatal(err)
	}
	uni := scatter.Makespan(procs, scatter.Uniform(len(procs), framesPerBatch))
	fmt.Printf("batch 1: balanced %v\n", res.Distribution)
	fmt.Printf("         makespan %.1f s (uniform: %.1f s, %.2fx slower)\n\n",
		res.Makespan, uni, uni/res.Makespan)

	// Between batches, a monitoring daemon reports that desktop-a now
	// runs a backup job: its effective per-frame cost triples.
	loaded := processors(nodes, map[string]float64{"desktop-a": 3})

	// Reusing the stale distribution on the loaded grid hurts:
	stale := scatter.Makespan(loaded, res.Distribution)

	// Re-balancing from the daemon's instantaneous costs recovers it:
	res2, err := scatter.Balance(loaded, framesPerBatch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("batch 2: desktop-a picks up background load (3x slower)\n")
	fmt.Printf("         stale distribution -> makespan %.1f s\n", stale)
	fmt.Printf("         re-balanced %v\n", res2.Distribution)
	fmt.Printf("         fresh distribution -> makespan %.1f s (%.1f%% recovered)\n\n",
		res2.Makespan, 100*(stale-res2.Makespan)/stale)

	// The affine heuristic is guaranteed: report its bound.
	fmt.Printf("optimality guarantee (Eq. 4): within %.3f s of the exact optimum\n",
		scatter.GuaranteeBound(loaded))

	// Show where the time goes on the re-balanced batch.
	tl, err := scatter.Predict(loaded, res2.Distribution)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	for _, p := range tl.Procs {
		fmt.Printf("%-10s %6d frames  idle %5.1fs  recv %5.1fs  transcode %6.1fs\n",
			p.Name, p.Items, p.Idle(), p.CommTime(), p.CompTime())
	}
}

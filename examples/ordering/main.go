// Ordering: explore the Theorem 3 processor-ordering policy on a
// random heterogeneous platform — every permutation of a small grid,
// and the three standard policies on a larger one.
//
// Run with: go run ./examples/ordering
package main

import (
	"fmt"
	"log"
	"math/rand"

	scatter "repro"
	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/schedule"
)

const items = 200000

func main() {
	// A small random platform: exhaustive permutation study.
	rng := rand.New(rand.NewSource(2003))
	small := platform.Random(rng, 4) // 4 machines, 1-4 CPUs each
	procs, err := small.ProcessorsOrdered(platform.OrderAsListed)
	if err != nil {
		log.Fatal(err)
	}
	if len(procs) > 7 {
		procs = append(procs[:6], procs[len(procs)-1]) // keep it exhaustive-friendly
	}
	p := len(procs)
	fmt.Printf("exhaustive study: %d processors, %d items, %d orderings\n",
		p, items, factorial(p-1))

	type outcome struct {
		perm     []int
		makespan float64
		stair    float64
	}
	var best, worst *outcome
	workers := make([]int, p-1)
	for i := range workers {
		workers[i] = i
	}
	permute(workers, func(perm []int) {
		ordered := make([]scatter.Processor, 0, p)
		for _, idx := range perm {
			ordered = append(ordered, procs[idx])
		}
		ordered = append(ordered, procs[p-1])
		res, err := scatter.Balance(ordered, items)
		if err != nil {
			log.Fatal(err)
		}
		tl, err := schedule.Build(ordered, res.Distribution)
		if err != nil {
			log.Fatal(err)
		}
		o := &outcome{perm: append([]int(nil), perm...), makespan: res.Makespan, stair: tl.StairArea()}
		if best == nil || o.makespan < best.makespan {
			best = o
		}
		if worst == nil || o.makespan > worst.makespan {
			worst = o
		}
	})

	policy := scatter.Order(procs)
	resPolicy, err := scatter.Balance(policy, items)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  best permutation:  makespan %8.2f s (stair area %7.1f s)\n", best.makespan, best.stair)
	fmt.Printf("  theorem 3 policy:  makespan %8.2f s\n", resPolicy.Makespan)
	fmt.Printf("  worst permutation: makespan %8.2f s (stair area %7.1f s)\n\n", worst.makespan, worst.stair)

	// The Table 1 grid: the three standard policies side by side.
	fmt.Println("Table 1 grid, 817101 rays:")
	for _, o := range []platform.Ordering{
		platform.OrderDescendingBandwidth,
		platform.OrderAsListed,
		platform.OrderAscendingBandwidth,
	} {
		procs, err := platform.Table1().ProcessorsOrdered(o)
		if err != nil {
			log.Fatal(err)
		}
		res, err := core.Heuristic(procs, platform.Table1Rays)
		if err != nil {
			log.Fatal(err)
		}
		tl, err := schedule.Build(procs, res.Distribution)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-22s makespan %7.2f s, stair area %7.1f s\n",
			o.String(), res.Makespan, tl.StairArea())
	}
}

func permute(xs []int, f func([]int)) {
	var rec func(k int)
	rec = func(k int) {
		if k == len(xs) {
			f(xs)
			return
		}
		for i := k; i < len(xs); i++ {
			xs[k], xs[i] = xs[i], xs[k]
			rec(k + 1)
			xs[k], xs[i] = xs[i], xs[k]
		}
	}
	rec(0)
}

func factorial(n int) int {
	f := 1
	for i := 2; i <= n; i++ {
		f *= i
	}
	return f
}

// Quickstart: balance a scatter operation over a small heterogeneous
// grid using the public API.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	scatter "repro"
)

func main() {
	// Describe the grid: per-item communication cost from the root
	// (alpha, seconds/item) and per-item computation cost (beta,
	// seconds/item), as in the paper's Table 1. The root holds the
	// data, pays nothing to "send" to itself, and goes last.
	procs := []scatter.Processor{
		{Name: "caseb", Comm: scatter.LinearCost(1.00e-5), Comp: scatter.LinearCost(0.004629)},
		{Name: "pellinore", Comm: scatter.LinearCost(1.12e-5), Comp: scatter.LinearCost(0.009365)},
		{Name: "merlin", Comm: scatter.LinearCost(8.15e-5), Comp: scatter.LinearCost(0.003976)},
		{Name: "dinadan", Comm: scatter.FreeCost(), Comp: scatter.LinearCost(0.009288)},
	}

	// Order the receivers by descending bandwidth (Theorem 3).
	procs = scatter.Order(procs)

	const n = 100000 // data items to distribute

	// The original program: a uniform MPI_Scatter.
	uniform := scatter.Uniform(len(procs), n)
	fmt.Printf("uniform distribution   %v -> makespan %7.2f s\n",
		uniform, scatter.Makespan(procs, uniform))

	// The paper's transformation: MPI_Scatterv with a balanced
	// distribution. Balance picks the best solver for the cost class
	// (here: the closed-form linear solution).
	res, err := scatter.Balance(procs, n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("balanced distribution  %v -> makespan %7.2f s\n",
		res.Distribution, res.Makespan)
	fmt.Printf("speedup: %.2fx\n\n", scatter.Makespan(procs, uniform)/res.Makespan)

	// Inspect the schedule: who idles, receives, computes, and when.
	tl, err := scatter.Predict(procs, res.Distribution)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range tl.Procs {
		fmt.Printf("%-10s idle %6.2fs  recv %6.2fs  comp %7.2fs  -> finishes at %7.2fs\n",
			p.Name, p.Idle(), p.CommTime(), p.CompTime(), p.Finish())
	}
	fmt.Printf("\nimbalance: %.2f%% of the total duration\n", 100*tl.Imbalance())
}

// Monitor loop: an iterative application (repeated scatter + compute
// batches) that queries an NWS-style monitor daemon "just before a
// scatter operation to retrieve the instantaneous grid characteristics"
// — the dynamic usage the paper sketches in Section 3.
//
// A background load wanders across the grid over ten batches; before
// each batch the application re-balances from the monitor's forecasts,
// and we compare against a static plan computed once at the start. The
// executions run on the discrete-event simulator with the true
// (drifting) load injected.
//
// Run with: go run ./examples/monitorloop
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/platform"
	"repro/internal/simgrid"
)

const (
	batches       = 10
	itemsPerBatch = 50000
)

func main() {
	base := platform.Table1()
	procs, err := base.ProcessorsOrdered(platform.OrderDescendingBandwidth)
	if err != nil {
		log.Fatal(err)
	}

	// The plan a one-shot static balancer would use for every batch.
	static, err := core.Heuristic(procs, itemsPerBatch)
	if err != nil {
		log.Fatal(err)
	}

	mon := monitor.New(128, nil)
	rng := rand.New(rand.NewSource(42))

	// The wandering background job: each batch it sits on one machine
	// at a random intensity.
	victims := []string{"caseb", "sekhmet", "pellinore", "leda", "merlin"}

	var staticTotal, adaptiveTotal float64
	fmt.Printf("%-7s %-10s %12s %12s\n", "batch", "loaded", "static (s)", "adaptive (s)")
	for b := 0; b < batches; b++ {
		victim := victims[rng.Intn(len(victims))]
		avail := 0.25 + 0.5*rng.Float64() // 25-75% of the CPU left

		// The daemon samples every machine a few times before the
		// batch; the victim reports its reduced availability.
		for s := 0; s < 5; s++ {
			tick := float64(b*10 + s)
			for _, m := range base.Machines {
				v := 1.0
				if m.Name == victim {
					v = avail
				}
				mon.Observe(monitor.CPUResource(m.Name), tick, v)
			}
		}

		// Adaptive: re-balance from the instantaneous forecasts.
		fresh := monitor.ApplyForecasts(base, mon)
		freshProcs, err := fresh.ProcessorsOrdered(platform.OrderDescendingBandwidth)
		if err != nil {
			log.Fatal(err)
		}
		adaptive, err := core.Heuristic(freshProcs, itemsPerBatch)
		if err != nil {
			log.Fatal(err)
		}

		// Execute both plans against the real load. The load windows
		// cover the whole batch.
		load := map[string][]simgrid.RateWindow{
			victim: {{Start: 0, End: 1e9, Factor: avail}},
		}
		exec := func(dist core.Distribution) float64 {
			tl, err := simgrid.Run(simgrid.Config{Procs: procs, Dist: dist, CPULoad: load})
			if err != nil {
				log.Fatal(err)
			}
			return tl.Makespan
		}
		st := exec(static.Distribution)
		ad := exec(adaptive.Distribution)
		staticTotal += st
		adaptiveTotal += ad
		fmt.Printf("%-7d %-10s %12.2f %12.2f\n", b+1, fmt.Sprintf("%s@%.0f%%", victim, 100*avail), st, ad)
	}

	fmt.Printf("\ntotals over %d batches: static %.1f s, adaptive %.1f s (%.1f%% saved)\n",
		batches, staticTotal, adaptiveTotal, 100*(staticTotal-adaptiveTotal)/staticTotal)
	fmt.Println("\nThe monitor re-query costs one cheap LP solve per batch and keeps")
	fmt.Println("the scatter balanced as the background load wanders — the dynamic")
	fmt.Println("refinement the paper's Section 3 sketches on top of its static core.")
}

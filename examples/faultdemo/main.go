// Faultdemo: the paper's Table 1 scatter with injected failures, in
// two acts (see the README next to this file for the walkthrough).
//
// Act 1 — worker failures: a transient link drop on the first
// destination and a mid-scatter crash of sekhmet. The fault-tolerant
// scatter retries the dropped send, declares sekhmet dead, re-solves
// the distribution over the survivors (Theorem 2 machinery on the
// surviving subset, with link costs degraded by the monitor's
// observations), and redistributes the lost items in a second round —
// every item delivered exactly once.
//
// Act 2 — root failover: dinadan, the data root itself, crashes midway
// through serving the first round. The survivors elect the lowest rank
// holding the freshest replica of the delivery ledger, the promoted
// root re-reads the undelivered items from durable storage and resumes
// from the last checkpoint, and the follow-up gather completes at the
// new root — all items still delivered and collected exactly once.
//
// Act 3 — degraded network: a routed three-site ring where every trunk
// link runs at half speed, one site is partitioned mid-scatter and
// heals (its ranks rejoin without ever being declared dead), and one
// machine crashes for good. The divergence detector notices the cost
// model has gone stale, so the crash's rebalance skips the exact DP
// and diffuses the lost items over the live adjacency instead — still
// exactly once.
//
// Run with: go run ./examples/faultdemo
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/monitor"
	"repro/internal/mpi"
	"repro/internal/platform"
	"repro/internal/schedule"
	"repro/internal/simgrid"
	"repro/internal/trace"
)

func main() {
	procs, err := platform.Table1().ProcessorsOrdered(platform.OrderDescendingBandwidth)
	if err != nil {
		log.Fatal(err)
	}
	root := len(procs) - 1 // service order: root (dinadan) last
	const n = platform.Table1Rays

	// The paper's balanced distribution (all Table 1 costs are linear,
	// so this is the Theorem 1/2 closed form) and its analytic timeline.
	res, err := core.SolveLinear(procs, n)
	if err != nil {
		log.Fatal(err)
	}
	counts := []int(res.Distribution)
	tlPlan, err := schedule.Build(procs, res.Distribution)
	if err != nil {
		log.Fatal(err)
	}

	// The failure scenario. The first destination's link drops sends
	// for 0.4 s (one timeout + retry), and sekhmet crashes midway
	// through receiving its share.
	sek := rankOf(procs, "sekhmet")
	crashAt := (tlPlan.Procs[sek].Recv.Start + tlPlan.Procs[sek].Recv.End) / 2
	plan := fault.MustPlan(
		fault.Fault{Kind: fault.LinkDrop, Rank: 0, Start: 0, End: 0.4},
		fault.Fault{Kind: fault.Crash, Rank: sek, Start: crashAt},
	)
	pol := fault.Policy{
		Timeout:    0.5,
		MaxRetries: 3,
		Backoff:    fault.Backoff{Base: 0.25, Factor: 2, Cap: 2},
	}

	fmt.Printf("platform: Table 1, %d processors, root %s, n = %d rays\n",
		len(procs), procs[root].Name, n)
	fmt.Printf("planned distribution (makespan %.1f s):\n", res.Makespan)
	printDist(procs, res.Distribution)
	fmt.Println("\ninjected faults:")
	for _, f := range plan.Faults() {
		switch f.Kind {
		case fault.Crash:
			fmt.Printf("  %-9s crashes at t = %.1f s (mid-transfer)\n", procs[f.Rank].Name, f.Start)
		default:
			fmt.Printf("  %-9s %s during [%.1f, %.1f) s\n", procs[f.Rank].Name, f.Kind, f.Start, f.End)
		}
	}
	fmt.Printf("retry policy: timeout %.2g s, %d retries, backoff %.2gx2^k s capped at %.2g s\n\n",
		pol.Timeout, pol.MaxRetries, pol.Backoff.Base, pol.Backoff.Cap)

	// The run: fault plan + retry policy installed, send outcomes feed
	// the monitor, and the rebalance re-solve reads the degraded link
	// costs back out.
	world, err := mpi.NewWorld(procs, root)
	if err != nil {
		log.Fatal(err)
	}
	world.SetFaultPlan(plan, pol)
	mon := monitor.New(64, nil)
	world.SetSendObserver(fault.MonitorObserver(mon))
	world.SetRebalanceCosts(func(ranks []int) []core.Processor {
		sub := make([]core.Processor, len(ranks))
		for i, r := range ranks {
			sub[i] = procs[r]
		}
		return fault.DegradeProcessors(mon, sub)
	})

	data := make([]int32, n)
	for i := range data {
		data[i] = int32(i)
	}
	chunks := make([][]int32, len(procs))
	reports := make([]*mpi.ScatterReport, len(procs))
	stats, err := mpi.Run(world, func(c *mpi.Comm) error {
		var in []int32
		if c.IsRoot() {
			in = data
		}
		buf, rep, err := mpi.FaultTolerantScatterv(c, in, counts)
		chunks[c.Rank()], reports[c.Rank()] = buf, rep
		if err != nil {
			return nil // the crashed rank leaves; survivors carry on
		}
		c.ChargeItems(len(buf))
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	rep := reports[root]

	fmt.Printf("scatter finished in %d rounds with %d timeouts and %d retries\n",
		rep.Rounds, rep.Timeouts, rep.Retries)
	fmt.Print("failed ranks:")
	for _, r := range rep.Failed {
		fmt.Printf(" %d (%s)", r, procs[r].Name)
	}
	fmt.Printf("\n\nfinal distribution after rebalancing over the survivors:\n")
	printDist(procs, rep.Final)

	// Exactly-once audit: every one of the n items landed on exactly
	// one surviving rank.
	seen := make([]bool, n)
	delivered := 0
	for _, chunk := range chunks {
		for _, v := range chunk {
			if seen[v] {
				log.Fatalf("item %d delivered twice", v)
			}
			seen[v] = true
			delivered++
		}
	}
	if delivered != n {
		log.Fatalf("delivered %d of %d items", delivered, n)
	}
	fmt.Printf("\nexactly-once check: all %d items delivered once (sum of shares %d)\n",
		delivered, rep.Final.Sum())

	// Cost of surviving the failures, against the paper's bounds.
	achieved := mpi.Makespan(stats)
	fmt.Printf("\nmakespan: %.1f s achieved vs %.1f s failure-free optimum (overhead %.1f s, +%.1f%%)\n",
		achieved, res.Makespan, achieved-res.Makespan, 100*(achieved-res.Makespan)/res.Makespan)
	fmt.Printf("Eq. (4) heuristic gap bound on the re-solved distribution: %.2f s\n",
		core.GuaranteeBound(procs))

	fmt.Printf("\nper-rank timeline (= comm, R rebalance, # comp, ! timeout, ~ backoff, x crashed):\n")
	fmt.Print(trace.RankGantt(stats, 96))

	svg := trace.RankSVG(stats, "Table 1 scatter with a link drop and a sekhmet crash")
	if err := os.MkdirAll("figures", 0o755); err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile("figures/fault.svg", []byte(svg), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwrote figures/fault.svg")

	// Cross-check with the discrete-event simulator: under the same
	// fault plan, the original (non-fault-tolerant) scatter never
	// completes — sekhmet's link stops forever mid-transfer.
	names := make([]string, len(procs))
	for i, p := range procs {
		names[i] = p.Name
	}
	cpuW, linkW := simgrid.PlanWindows(plan, names)
	tl, err := simgrid.Run(simgrid.Config{
		Procs: procs, Dist: res.Distribution, CPULoad: cpuW, LinkLoad: linkW,
	})
	if err != nil {
		log.Fatal(err)
	}
	if math.IsInf(tl.Makespan, 1) {
		fmt.Println("simgrid cross-check: the plain scatter under the same faults never completes (makespan +Inf)")
	} else {
		fmt.Printf("simgrid cross-check: plain scatter makespan %.1f s\n", tl.Makespan)
	}

	failoverDemo(procs, root, counts, tlPlan, pol)
	degradedDemo()
}

// degradedDemo is act 3: the network itself misbehaves. On a routed
// three-site ring, every trunk link degrades to half speed, one whole
// site is partitioned mid-scatter but heals in time for its ranks to
// rejoin, and one machine crashes permanently. The divergence detector
// watches observed transfer times drift away from the nominal cost
// model and switches the crash's rebalance from the exact DP (which
// would optimize the stale model) to diffusion over the live
// adjacency.
func degradedDemo() {
	// The platform: three sites in a ring, two machines each, the data
	// root on siteA. Cross-site transfers route over the trunk links;
	// each machine pays its LAN attachment on top.
	g := platform.Graph{Name: "demo-ring", Root: "a0"}
	for s, site := range []string{"siteA", "siteB", "siteC"} {
		node := platform.Node{Name: site}
		for m := 0; m < 2; m++ {
			node.Machines = append(node.Machines, platform.Machine{
				Name:  fmt.Sprintf("%c%d", 'a'+s, m),
				CPUs:  1,
				Beta:  1 + 0.5*float64((2*s+m)%3),
				Alpha: 0.02,
			})
		}
		g.Nodes = append(g.Nodes, node)
	}
	g.Links = []platform.Link{
		{A: "siteA", B: "siteB", Alpha: 0.05},
		{A: "siteB", B: "siteC", Alpha: 0.05},
		{A: "siteC", B: "siteA", Alpha: 0.08},
	}

	pl, err := g.Flatten()
	if err != nil {
		log.Fatal(err)
	}
	procs, err := pl.Processors()
	if err != nil {
		log.Fatal(err)
	}
	root := len(procs) - 1 // Flatten serves the root last
	rankNodes, err := g.ProcessorNodes()
	if err != nil {
		log.Fatal(err)
	}
	const n = 600
	res, err := core.Algorithm2(procs, n)
	if err != nil {
		log.Fatal(err)
	}
	counts := []int(res.Distribution)
	mk := res.Makespan

	// The faults, anchored to the planned serve order: every trunk link
	// at half speed for the whole run (the model is globally stale), so
	// the real transfers run ~2x the analytic windows. siteB drops off
	// the network just as the root starts serving it, and heals before
	// the retry budget runs out — rejoin, not death. c0 crashes at the
	// same moment, permanently.
	tl, err := schedule.Build(procs, res.Distribution)
	if err != nil {
		log.Fatal(err)
	}
	victim := rankOf(procs, "c0")
	pStart := 2*tl.Procs[rankOf(procs, "b0")].Recv.Start + 1
	pEnd := pStart + 0.4*mk
	netfaults := []fault.NetFault{
		{Kind: fault.Partition, Site: "siteB", Start: pStart, End: pEnd},
	}
	for _, l := range g.Links {
		netfaults = append(netfaults, fault.NetFault{
			Kind: fault.LinkDegrade, EdgeA: l.A, EdgeB: l.B,
			Start: 0, End: 1e9, Factor: 2,
		})
	}
	netplan, err := simgrid.BuildNetPlan(g, rankNodes, netfaults)
	if err != nil {
		log.Fatal(err)
	}
	plan := fault.MustPlan(fault.Fault{Kind: fault.Crash, Rank: victim, Start: pStart})
	pol := fault.Policy{
		Timeout:    0.04 * mk,
		MaxRetries: 6,
		Backoff:    fault.Backoff{Base: 0.02 * mk, Factor: 2, Cap: 0.08 * mk},
	}

	fmt.Printf("\n=== act 3: degraded network (partition, rejoin, diffusion fallback) ===\n\n")
	fmt.Printf("platform: %s — 3 sites x 2 machines, root %s on siteA, n = %d items\n",
		g.Name, procs[root].Name, n)
	fmt.Printf("planned distribution (nominal makespan %.1f s):\n", mk)
	printDist(procs, res.Distribution)
	fmt.Println("\ninjected faults:")
	fmt.Printf("  every trunk link degraded 2x for the whole run (stale cost model)\n")
	fmt.Printf("  siteB partitioned during [%.1f, %.1f) s — heals mid-scatter\n", pStart, pEnd)
	fmt.Printf("  c0 crashes at t = %.1f s (permanent)\n", pStart)

	world, err := mpi.NewWorld(procs, root)
	if err != nil {
		log.Fatal(err)
	}
	world.SetFaultPlan(plan, pol)
	world.SetNetPlan(netplan)
	world.SetDiffusionAdjacency(g.RankAdjacency(rankNodes))
	div := monitor.NewDivergence(monitor.DivergenceConfig{Window: 4, Trip: 2, Clear: 3})
	world.SetDivergence(div)

	data := make([]int32, n)
	for i := range data {
		data[i] = int32(i)
	}
	chunks := make([][]int32, len(procs))
	reports := make([]*mpi.ScatterReport, len(procs))
	stats, err := mpi.Run(world, func(c *mpi.Comm) error {
		var in []int32
		if c.IsRoot() {
			in = data
		}
		buf, rep, err := mpi.FaultTolerantScatterv(c, in, counts)
		chunks[c.Rank()], reports[c.Rank()] = buf, rep
		if err != nil {
			return nil // the crashed rank leaves; survivors carry on
		}
		c.ChargeItems(len(buf))
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	rep := reports[root]

	fmt.Printf("\nscatter finished in %d rounds with %d timeouts and %d retries\n",
		rep.Rounds, rep.Timeouts, rep.Retries)
	fmt.Print("failed ranks:")
	for _, r := range rep.Failed {
		fmt.Printf(" %d (%s)", r, procs[r].Name)
	}
	fmt.Printf("\nsiteB ranks held their shares across the heal — partitioned, retried, rejoined\n")
	fmt.Printf("divergence detector degraded: %v (observed transfers ~2x the nominal model)\n",
		div.Degraded())
	for _, rb := range rep.Rebalances {
		fmt.Printf("rebalance: %d lost items redistributed in %q mode over %d survivors\n",
			rb.Items, rb.Mode, len(rb.Ranks))
	}
	fmt.Printf("\nfinal distribution after the diffusion rebalance:\n")
	printDist(procs, rep.Final)

	// Exactly-once audit: despite the partition, the heal, the stale
	// model, and the crash, every item landed on exactly one rank.
	seen := make([]bool, n)
	delivered := 0
	for _, chunk := range chunks {
		for _, v := range chunk {
			if seen[v] {
				log.Fatalf("item %d delivered twice", v)
			}
			seen[v] = true
			delivered++
		}
	}
	if delivered != n {
		log.Fatalf("delivered %d of %d items", delivered, n)
	}
	fmt.Printf("\nexactly-once check: all %d items delivered once (sum of shares %d)\n",
		delivered, rep.Final.Sum())

	fmt.Printf("\nper-rank timeline (! timeout, ~ backoff, R rebalance incl. diffuse→ sends, x crashed):\n")
	fmt.Print(trace.RankGantt(stats, 96))

	svg := trace.RankSVG(stats, "Routed ring surviving a partition, a heal, and a crash on a degraded network")
	if err := os.WriteFile("figures/degraded.svg", []byte(svg), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwrote figures/degraded.svg")
}

// failoverDemo is act 2: the data root itself dies mid-scatter. The
// survivors elect a new root from the replicated delivery ledger,
// resume the scatter from the last checkpoint, and finish the whole
// scatter→compute→gather pipeline at the promoted root.
func failoverDemo(procs []core.Processor, root int, counts []int, tlPlan schedule.Timeline, pol fault.Policy) {
	const n = platform.Table1Rays

	// Crash the root at 40% of the scatter's serve window: the early,
	// fast-link ranks already hold their checkpointed shares; the rest
	// of the input must be re-read and re-scattered by the new root.
	serveEnd := 0.0
	for _, p := range tlPlan.Procs {
		if p.Recv.End > serveEnd {
			serveEnd = p.Recv.End
		}
	}
	crashAt := 0.4 * serveEnd
	plan := fault.MustPlan(fault.Fault{Kind: fault.Crash, Rank: root, Start: crashAt})

	fmt.Printf("\n=== act 2: root failover ===\n\n")
	fmt.Printf("injected fault: %s (the data root) crashes at t = %.1f s, mid-first-round\n",
		procs[root].Name, crashAt)

	world, err := mpi.NewWorld(procs, root)
	if err != nil {
		log.Fatal(err)
	}
	world.SetFaultPlan(plan, pol)

	data := make([]int32, n)
	for i := range data {
		data[i] = int32(i)
	}
	sreports := make([]*mpi.ScatterReport, len(procs))
	gathered := make([][]int32, len(procs))
	stats, err := mpi.Run(world, func(c *mpi.Comm) error {
		comm := c
		defer func() { c.Merge(comm) }()
		var in []int32
		if comm.IsRoot() {
			in = data
		}
		buf, rep, err := mpi.FaultTolerantScatterv(comm, in, counts)
		sreports[c.Rank()] = rep
		if err != nil {
			return nil // the crashed root leaves; survivors carry on
		}
		comm = rep.Survivors
		comm.ChargeItems(len(buf))
		out, grep, err := mpi.FaultTolerantGatherv(comm, buf)
		if err != nil {
			return nil
		}
		comm = grep.Survivors
		gathered[c.Rank()] = out
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	rep := sreports[root] // the report is shared across the world's ranks
	fmt.Print("root path:")
	for _, r := range rep.RootPath {
		fmt.Printf(" %s", procs[r].Name)
	}
	fmt.Printf(" (%d failover)\n", rep.Failovers)
	newRoot := rep.FinalRoot()
	checkpointed := n
	for _, rb := range rep.Rebalances {
		checkpointed -= rb.Items
	}
	fmt.Printf("ledger checkpoint at the crash: %d of %d items already delivered and kept;\n",
		checkpointed, n)
	fmt.Printf("%s re-elected (lowest survivor with the freshest ledger replica), resumed the rest\n\n",
		procs[newRoot].Name)
	fmt.Println("final distribution after the resume:")
	printDist(procs, rep.Final)

	// Exactly-once audit on the gathered output at the promoted root:
	// despite losing the data holder mid-scatter, every item was
	// computed and collected exactly once.
	out := gathered[newRoot]
	seen := make([]bool, n)
	for _, v := range out {
		if seen[v] {
			log.Fatalf("item %d gathered twice", v)
		}
		seen[v] = true
	}
	if len(out) != n {
		log.Fatalf("gathered %d of %d items", len(out), n)
	}
	fmt.Printf("\nexactly-once check: all %d items gathered once at %s\n",
		n, procs[newRoot].Name)

	fmt.Printf("\nper-rank timeline (R resume sends, F failover election):\n")
	fmt.Print(trace.RankGantt(stats, 96))

	svg := trace.RankSVG(stats, "Table 1 pipeline surviving a mid-scatter root crash")
	if err := os.WriteFile("figures/failover.svg", []byte(svg), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwrote figures/failover.svg")
}

// rankOf finds a processor by name.
func rankOf(procs []core.Processor, name string) int {
	for i, p := range procs {
		if p.Name == name {
			return i
		}
	}
	log.Fatalf("no processor named %s", name)
	return -1
}

// printDist prints a distribution with bars, largest share = 40 chars.
func printDist(procs []core.Processor, dist core.Distribution) {
	max := 1
	for _, d := range dist {
		if d > max {
			max = d
		}
	}
	for i, p := range procs {
		fmt.Printf("  %-12s %7d %s\n", p.Name, dist[i], strings.Repeat("▪", dist[i]*40/max))
	}
}

// Package scatter load-balances scatter operations for grid computing.
//
// It is the public face of a reproduction of S. Genaud, A. Giersch and
// F. Vivien, "Load-Balancing Scatter Operations for Grid Computing"
// (INRIA RR-4770, 2003): given heterogeneous processors described by
// communication and computation cost functions, it computes the data
// distribution n1..np minimizing the completion time of a single-port
// scatter followed by independent per-item computation,
//
//	T = max_i ( sum_{j<=i} Tcomm(j, nj) + Tcomp(i, ni) ),
//
// to be fed to an MPI_Scatterv-style primitive in place of a uniform
// MPI_Scatter.
//
// # Quick start
//
//	procs := []scatter.Processor{
//	    {Name: "fast", Comm: scatter.LinearCost(1e-5), Comp: scatter.LinearCost(0.005)},
//	    {Name: "slow", Comm: scatter.LinearCost(8e-5), Comp: scatter.LinearCost(0.016)},
//	    {Name: "root", Comm: scatter.FreeCost(), Comp: scatter.LinearCost(0.009)},
//	}
//	procs = scatter.Order(procs) // Theorem 3: descending bandwidth, root last
//	res, err := scatter.Balance(procs, 817101)
//	// res.Distribution -> counts for MPI_Scatterv; res.Makespan -> predicted time
//
// Balance picks the fastest applicable solver automatically: the
// closed-form solution for linear costs, the guaranteed LP heuristic
// for affine costs, and the exact dynamic programs otherwise. The
// explicit solvers (BalanceExact, BalanceDP, BalanceHeuristic,
// BalanceLinear) are available when the choice matters.
package scatter

import (
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/platform"
	"repro/internal/schedule"
)

// Processor describes one computational node: its name, the time to
// receive x items from the root (Comm), and the time to compute x
// items (Comp). The root processor itself should use FreeCost for Comm
// and be placed last.
type Processor = core.Processor

// CostFunction maps an item count to a duration in seconds.
type CostFunction = cost.Function

// Distribution is the per-processor item counts, in processor order.
type Distribution = core.Distribution

// Result is a computed distribution with its predicted makespan.
type Result = core.Result

// Platform is a JSON-loadable grid description (machines, CPU counts,
// per-item costs); see LoadPlatform and Table1.
type Platform = platform.Platform

// Timeline is the per-processor schedule (idle/receive/compute
// segments) of a distribution; see Predict.
type Timeline = schedule.Timeline

// LinearCost returns the cost function perItem*x, the model of the
// paper's Section 4 (alpha and beta constants).
func LinearCost(perItem float64) CostFunction { return cost.Linear{PerItem: perItem} }

// AffineCost returns the cost function fixed + perItem*x (for x > 0),
// the model required by the guaranteed heuristic.
func AffineCost(fixed, perItem float64) CostFunction {
	return cost.Affine{Fixed: fixed, PerItem: perItem}
}

// FreeCost returns the identically-zero cost function (the root's
// communication with itself).
func FreeCost() CostFunction { return cost.Zero }

// TableCost returns a cost function backed by measured per-count
// values (values[x] = cost of x items), extrapolating linearly past
// the end; declare increasing to enable the optimized exact solver.
func TableCost(values []float64, increasing bool) CostFunction {
	return cost.Table{Values: values, Increasing: increasing}
}

// Order returns the processors reordered by the paper's Theorem 3
// policy: decreasing link bandwidth, with the root — assumed to be the
// last element of the input — kept last.
func Order(procs []Processor) []Processor {
	if len(procs) == 0 {
		return nil
	}
	order := core.OrderDecreasingBandwidth(procs, len(procs)-1)
	return core.Permute(procs, order)
}

// Balance computes a distribution of n items over the processors
// (root last), choosing the fastest applicable algorithm from the
// processors' cost-function classes:
//
//   - all costs linear: the closed-form solution of Theorems 1-2 plus
//     the rounding scheme (O(p²));
//   - all costs affine: the guaranteed LP heuristic of Section 3.3
//     (optimal within sum_j Tcomm(j,1) + max_i Tcomp(i,1));
//   - all costs increasing: the exact optimized dynamic program
//     (Algorithm 2, O(p·n²) worst case);
//   - otherwise: the exact basic dynamic program (Algorithm 1).
func Balance(procs []Processor, n int) (Result, error) {
	if err := core.ValidateProcessors(procs); err != nil {
		return Result{}, err
	}
	class := cost.LinearClass
	for _, p := range procs {
		for _, f := range []cost.Function{p.Comm, p.Comp} {
			if c := cost.ClassOf(f); c < class {
				class = c
			}
		}
	}
	switch class {
	case cost.LinearClass:
		return core.SolveLinear(procs, n)
	case cost.AffineClass:
		return core.Heuristic(procs, n)
	case cost.Increasing:
		return core.Algorithm2(procs, n)
	default:
		return core.Algorithm1(procs, n)
	}
}

// BalanceExact computes the provably optimal integer distribution with
// the basic dynamic program (Algorithm 1). It only requires the cost
// functions to be non-negative and null at zero, and runs in O(p·n²).
func BalanceExact(procs []Processor, n int) (Result, error) {
	return core.Algorithm1(procs, n)
}

// BalanceDP computes the optimal integer distribution with the
// optimized dynamic program (Algorithm 2); the cost functions must be
// increasing.
func BalanceDP(procs []Processor, n int) (Result, error) {
	return core.Algorithm2(procs, n)
}

// BalanceHeuristic computes a distribution with the guaranteed LP
// heuristic of Section 3.3; the cost functions must be affine. The
// result's makespan exceeds the optimum by at most GuaranteeBound.
func BalanceHeuristic(procs []Processor, n int) (Result, error) {
	return core.Heuristic(procs, n)
}

// BalanceLinear computes a distribution with the closed-form solution
// of Section 4 (Theorems 1-2) plus rounding; the cost functions must
// be linear.
func BalanceLinear(procs []Processor, n int) (Result, error) {
	return core.SolveLinear(procs, n)
}

// Uniform returns the baseline distribution of a plain MPI_Scatter:
// floor(n/p) items each, remainder to the first ranks.
func Uniform(p, n int) Distribution { return core.Uniform(p, n) }

// Predict builds the full per-processor timeline of executing dist on
// the processors under the single-port model: when each processor
// idles, receives and computes, plus makespan, imbalance and stair
// area.
func Predict(procs []Processor, dist Distribution) (Timeline, error) {
	return schedule.Build(procs, dist)
}

// Makespan evaluates the completion time of dist on the processors
// (Eq. 2 of the paper).
func Makespan(procs []Processor, dist Distribution) float64 {
	return core.Makespan(procs, dist)
}

// GuaranteeBound returns the additive optimality gap of the heuristic
// and the rounding schemes (Eq. 4): sum_j Tcomm(j,1) + max_i Tcomp(i,1).
func GuaranteeBound(procs []Processor) float64 { return core.GuaranteeBound(procs) }

// LoadPlatform parses and validates a JSON platform description.
func LoadPlatform(data []byte) (Platform, error) { return platform.Parse(data) }

// Table1 returns the paper's 16-processor, two-site testbed.
func Table1() Platform { return platform.Table1() }

// PlatformProcessors expands a platform into processors ordered by the
// Theorem 3 policy (descending bandwidth, root last).
func PlatformProcessors(p Platform) ([]Processor, error) {
	return p.ProcessorsOrdered(platform.OrderDescendingBandwidth)
}

// MultiRoundPlan is a multi-installment scatter plan; see BalanceMultiRound.
type MultiRoundPlan = core.MultiRoundResult

// BalanceMultiRound computes an R-round (multi-installment) scatter
// plan for affine cost functions: the root serves every processor R
// times, so far processors start computing on their first installment
// while the rest of their data is still queued — shrinking the stair
// effect on communication-bound platforms at the price of more
// messages. One round is exactly the single-scatter problem.
func BalanceMultiRound(procs []Processor, n, rounds int) (MultiRoundPlan, error) {
	return core.MultiRound(procs, n, rounds)
}

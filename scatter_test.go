package scatter

import (
	"math"
	"testing"

	"repro/internal/core"
)

func demoProcs() []Processor {
	return []Processor{
		{Name: "fast", Comm: LinearCost(1e-5), Comp: LinearCost(0.005)},
		{Name: "slow", Comm: LinearCost(8e-5), Comp: LinearCost(0.016)},
		{Name: "root", Comm: FreeCost(), Comp: LinearCost(0.009)},
	}
}

func TestBalancePicksLinearSolver(t *testing.T) {
	res, err := Balance(demoProcs(), 10000)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Distribution.Validate(3, 10000); err != nil {
		t.Fatal(err)
	}
	uni := Makespan(demoProcs(), Uniform(3, 10000))
	if res.Makespan >= uni {
		t.Errorf("balanced %g not better than uniform %g", res.Makespan, uni)
	}
}

func TestBalanceAffineRoute(t *testing.T) {
	procs := []Processor{
		{Name: "a", Comm: AffineCost(0.5, 1e-4), Comp: AffineCost(0.1, 0.01)},
		{Name: "root", Comm: FreeCost(), Comp: LinearCost(0.01)},
	}
	res, err := Balance(procs, 500)
	if err != nil {
		t.Fatal(err)
	}
	// Within the Eq. (4) guarantee of the exact optimum.
	opt, err := BalanceExact(procs, 500)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan > opt.Makespan+GuaranteeBound(procs)+1e-9 {
		t.Errorf("affine route outside the guarantee: %g vs %g + %g",
			res.Makespan, opt.Makespan, GuaranteeBound(procs))
	}
}

func TestBalanceIncreasingRoute(t *testing.T) {
	procs := []Processor{
		{Name: "table", Comm: TableCost([]float64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512}, true), Comp: LinearCost(1)},
		{Name: "root", Comm: FreeCost(), Comp: LinearCost(1)},
	}
	res, err := Balance(procs, 10)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := BalanceExact(procs, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != opt.Makespan {
		t.Errorf("increasing route %g != exact %g", res.Makespan, opt.Makespan)
	}
}

func TestBalanceGeneralRoute(t *testing.T) {
	weird := func(x int) float64 { return math.Abs(math.Sin(float64(x))) * 10 }
	procs := []Processor{
		{Name: "weird", Comm: LinearCost(0.1), Comp: costFunc(weird)},
		{Name: "root", Comm: FreeCost(), Comp: LinearCost(1)},
	}
	res, err := Balance(procs, 8)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := core.BruteForce(procs, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != opt.Makespan {
		t.Errorf("general route %g != brute force %g", res.Makespan, opt.Makespan)
	}
}

// costFunc adapts a function for the general-route test.
type costFunc func(x int) float64

func (f costFunc) Eval(x int) float64 {
	if x <= 0 {
		return 0
	}
	return f(x)
}

func TestAllSolversAgreeWithinGuarantee(t *testing.T) {
	procs := demoProcs()
	n := 5000
	exact, err := BalanceExact(procs, n)
	if err != nil {
		t.Fatal(err)
	}
	dp, err := BalanceDP(procs, n)
	if err != nil {
		t.Fatal(err)
	}
	if dp.Makespan != exact.Makespan {
		t.Errorf("Algorithm 2 %g != Algorithm 1 %g", dp.Makespan, exact.Makespan)
	}
	bound := GuaranteeBound(procs)
	for name, solve := range map[string]func([]Processor, int) (Result, error){
		"heuristic": BalanceHeuristic,
		"linear":    BalanceLinear,
	} {
		res, err := solve(procs, n)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Makespan < exact.Makespan-1e-9 || res.Makespan > exact.Makespan+bound+1e-9 {
			t.Errorf("%s makespan %g outside [optimal, optimal+bound] = [%g, %g]",
				name, res.Makespan, exact.Makespan, exact.Makespan+bound)
		}
	}
}

func TestOrderPolicy(t *testing.T) {
	procs := []Processor{
		{Name: "slowlink", Comm: LinearCost(3), Comp: LinearCost(1)},
		{Name: "fastlink", Comm: LinearCost(1), Comp: LinearCost(1)},
		{Name: "root", Comm: FreeCost(), Comp: LinearCost(1)},
	}
	ordered := Order(procs)
	if ordered[0].Name != "fastlink" || ordered[2].Name != "root" {
		t.Errorf("Order = [%s %s %s]", ordered[0].Name, ordered[1].Name, ordered[2].Name)
	}
	if Order(nil) != nil {
		t.Error("Order(nil) != nil")
	}
}

func TestPredict(t *testing.T) {
	procs := demoProcs()
	res, err := Balance(procs, 1000)
	if err != nil {
		t.Fatal(err)
	}
	tl, err := Predict(procs, res.Distribution)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tl.Makespan-res.Makespan) > 1e-9 {
		t.Errorf("predicted makespan %g != result %g", tl.Makespan, res.Makespan)
	}
}

func TestTable1Facade(t *testing.T) {
	p := Table1()
	procs, err := PlatformProcessors(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(procs) != 16 {
		t.Fatalf("Table 1 has %d processors", len(procs))
	}
	res, err := Balance(procs, 817101)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Figure 3 band: 405-430 s.
	if res.Makespan < 380 || res.Makespan < 0 || res.Makespan > 450 {
		t.Errorf("Table 1 balanced makespan = %g s, paper band is 405-430 s", res.Makespan)
	}
}

func TestLoadPlatform(t *testing.T) {
	data := []byte(`{
		"name": "demo", "root": "r",
		"machines": [
			{"name": "r", "cpus": 1, "beta": 0.01, "alpha": 0},
			{"name": "w", "cpus": 2, "beta": 0.005, "alpha": 1e-5}
		]
	}`)
	p, err := LoadPlatform(data)
	if err != nil {
		t.Fatal(err)
	}
	procs, err := PlatformProcessors(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(procs) != 3 {
		t.Errorf("got %d processors, want 3", len(procs))
	}
	if _, err := LoadPlatform([]byte("not json")); err == nil {
		t.Error("garbage platform accepted")
	}
}

func TestBalanceRejectsBadInput(t *testing.T) {
	if _, err := Balance(nil, 10); err == nil {
		t.Error("empty processor list accepted")
	}
	if _, err := Balance(demoProcs(), -5); err == nil {
		t.Error("negative n accepted")
	}
}

func TestBalanceMultiRound(t *testing.T) {
	procs := []Processor{
		{Name: "w1", Comm: LinearCost(0.5), Comp: LinearCost(1)},
		{Name: "w2", Comm: LinearCost(0.5), Comp: LinearCost(1)},
		{Name: "root", Comm: FreeCost(), Comp: LinearCost(1)},
	}
	one, err := BalanceMultiRound(procs, 120, 1)
	if err != nil {
		t.Fatal(err)
	}
	three, err := BalanceMultiRound(procs, 120, 3)
	if err != nil {
		t.Fatal(err)
	}
	if three.Totals.Sum() != 120 {
		t.Errorf("3-round totals sum to %d", three.Totals.Sum())
	}
	if three.Makespan > one.Makespan+1e-9 {
		t.Errorf("3 rounds (%g) worse than 1 round (%g) on a comm-bound grid",
			three.Makespan, one.Makespan)
	}
	if _, err := BalanceMultiRound(procs, 10, 0); err == nil {
		t.Error("zero rounds accepted")
	}
}

package scatter

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/mpi"
	"repro/internal/platform"
	"repro/internal/schedule"
	"repro/internal/seismic"
	"repro/internal/simgrid"
)

// TestIntegrationPaperPipeline runs the paper's full story end to end:
// Table 1 platform -> Theorem 3 ordering -> guaranteed heuristic ->
// virtual-time MPI execution with real ray tracing -> the measured
// virtual makespan matches the analytic prediction and beats uniform.
func TestIntegrationPaperPipeline(t *testing.T) {
	const rays = 5000

	procs, err := PlatformProcessors(Table1())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Balance(procs, rays)
	if err != nil {
		t.Fatal(err)
	}

	tracer, err := seismic.NewTracer(seismic.IASP91Lite(), 300)
	if err != nil {
		t.Fatal(err)
	}
	catalog := seismic.SyntheticCatalog(seismic.CatalogConfig{Seed: 1999, Events: rays})

	world, err := mpi.NewWorld(procs, len(procs)-1)
	if err != nil {
		t.Fatal(err)
	}
	traced := make([]int, len(procs))
	stats, err := mpi.Run(world, func(c *mpi.Comm) error {
		var raydata []seismic.Event
		if c.IsRoot() {
			raydata = catalog
		}
		rbuff, err := mpi.Scatterv(c, raydata, []int(res.Distribution))
		if err != nil {
			return err
		}
		rays := tracer.TraceAll(rbuff) // real computation
		traced[c.Rank()] = len(rays)
		c.ChargeItems(len(rbuff)) // virtual cost per the platform model
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Every ray was traced exactly once.
	total := 0
	for _, n := range traced {
		total += n
	}
	if total != rays {
		t.Fatalf("traced %d rays, want %d", total, rays)
	}

	// The virtual makespan equals the analytic prediction.
	if got := mpi.Makespan(stats); math.Abs(got-res.Makespan) > 1e-6*res.Makespan {
		t.Errorf("virtual makespan %g != predicted %g", got, res.Makespan)
	}

	// And beats the uniform baseline.
	uniform := Makespan(procs, Uniform(len(procs), rays))
	if res.Makespan >= uniform {
		t.Errorf("balanced %g not better than uniform %g", res.Makespan, uniform)
	}
}

// TestIntegrationSimulatorAgreesWithMPI cross-validates the two
// execution substrates: the discrete-event simulator and the MPI
// runtime must produce identical timelines for a scatter+compute
// program on random platforms.
func TestIntegrationSimulatorAgreesWithMPI(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		p := platformFromSeed(t, seed)
		procs, err := p.ProcessorsOrdered(platform.OrderDescendingBandwidth)
		if err != nil {
			t.Fatal(err)
		}
		n := 10000
		res, err := core.Heuristic(procs, n)
		if err != nil {
			t.Fatal(err)
		}

		tl, err := simgrid.Run(simgrid.Config{Procs: procs, Dist: res.Distribution})
		if err != nil {
			t.Fatal(err)
		}

		world, err := mpi.NewWorld(procs, len(procs)-1)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := mpi.Run(world, func(c *mpi.Comm) error {
			var data []byte
			if c.IsRoot() {
				data = make([]byte, n)
			}
			buf, err := mpi.Scatterv(c, data, []int(res.Distribution))
			if err != nil {
				return err
			}
			c.ChargeItems(len(buf))
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}

		for r := range procs {
			want := tl.Procs[r].Finish()
			got := stats[r].Finish
			if math.Abs(got-want) > 1e-9*math.Max(1, want) {
				t.Errorf("seed %d rank %d: MPI finish %g != simulator %g", seed, r, got, want)
			}
		}
	}
}

func platformFromSeed(t *testing.T, seed int64) platform.Platform {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	return platform.Random(rng, 3+int(seed%3))
}

// TestIntegrationMonitorDrivenRebalance exercises the §3 remark: a
// monitor daemon feeds instantaneous costs, the distribution is
// recomputed before the scatter, and the simulated execution under the
// degraded platform confirms the win.
func TestIntegrationMonitorDrivenRebalance(t *testing.T) {
	base := platform.Table1()
	const n = 200000

	// The daemon observed caseb at 30% availability for a while.
	mon := monitor.New(64, nil)
	for i := 0; i < 40; i++ {
		mon.Observe(monitor.CPUResource("caseb"), float64(i), 0.3)
	}
	degraded := monitor.ApplyForecasts(base, mon)

	staleProcs, err := base.ProcessorsOrdered(platform.OrderDescendingBandwidth)
	if err != nil {
		t.Fatal(err)
	}
	stale, err := core.Heuristic(staleProcs, n)
	if err != nil {
		t.Fatal(err)
	}
	freshProcs, err := degraded.ProcessorsOrdered(platform.OrderDescendingBandwidth)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := core.Heuristic(freshProcs, n)
	if err != nil {
		t.Fatal(err)
	}

	// Execute both distributions on the *actually degraded* grid: the
	// simulator slows caseb's CPU to 30% for the whole run.
	exec := func(dist core.Distribution) float64 {
		tl, err := simgrid.Run(simgrid.Config{
			Procs: staleProcs, // calibrated costs...
			Dist:  dist,
			CPULoad: map[string][]simgrid.RateWindow{ // ...with the real load peak
				"caseb": {{Start: 0, End: 1e9, Factor: 0.3}},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return tl.Makespan
	}
	staleTime := exec(stale.Distribution)
	freshTime := exec(fresh.Distribution)
	if freshTime >= staleTime {
		t.Errorf("monitor-driven rebalance did not help: fresh %g vs stale %g", freshTime, staleTime)
	}
}

// TestIntegrationScheduleEverywhereConsistent pins the three
// evaluators of Eq. (1) — core.FinishTimes, schedule.Build, and
// simgrid.Run — to each other across the Table 1 figure runs.
func TestIntegrationScheduleEverywhereConsistent(t *testing.T) {
	for _, ordering := range []platform.Ordering{
		platform.OrderDescendingBandwidth,
		platform.OrderAscendingBandwidth,
		platform.OrderAsListed,
	} {
		procs, err := platform.Table1().ProcessorsOrdered(ordering)
		if err != nil {
			t.Fatal(err)
		}
		for _, dist := range []core.Distribution{
			core.Uniform(len(procs), 817101),
			mustHeuristic(t, procs, 817101),
		} {
			eq1 := core.FinishTimes(procs, dist)
			tl, err := schedule.Build(procs, dist)
			if err != nil {
				t.Fatal(err)
			}
			sim, err := simgrid.Run(simgrid.Config{Procs: procs, Dist: dist})
			if err != nil {
				t.Fatal(err)
			}
			for i := range procs {
				if math.Abs(eq1[i]-tl.Procs[i].Finish()) > 1e-6 ||
					math.Abs(eq1[i]-sim.Procs[i].Finish()) > 1e-6 {
					t.Fatalf("%v: evaluators disagree at proc %d: %g / %g / %g",
						ordering, i, eq1[i], tl.Procs[i].Finish(), sim.Procs[i].Finish())
				}
			}
		}
	}
}

func mustHeuristic(t *testing.T, procs []core.Processor, n int) core.Distribution {
	t.Helper()
	res, err := core.Heuristic(procs, n)
	if err != nil {
		t.Fatal(err)
	}
	return res.Distribution
}
